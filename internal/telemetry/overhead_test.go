package telemetry_test

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"testing"
	"time"

	"snappif/internal/core"
	"snappif/internal/flat"
	"snappif/internal/graph"
	"snappif/internal/sim"
	"snappif/internal/telemetry"
)

// fullConfig is the everything-on telemetry shape the overhead gate and the
// EXPERIMENTS.md table measure: wall-clock timestamps, per-step timing
// histograms, and the flight recorder at its default cadence.
func fullConfig() telemetry.Config {
	base := time.Now()
	return telemetry.Config{
		Clock:       func() int64 { return int64(time.Since(base)) },
		Timing:      true,
		FlightDepth: 8,
	}
}

// newFlatStepper builds a flat-engine runner over a ring of size n,
// optionally with telemetry attached. Caller must Close the runner.
func newFlatStepper(n int, tel *telemetry.Telemetry, maxSteps int) (*flat.Runner, error) {
	g, err := graph.Ring(n)
	if err != nil {
		return nil, err
	}
	pr, err := core.New(g, 0)
	if err != nil {
		return nil, err
	}
	kern, err := flat.FromCore(pr)
	if err != nil {
		return nil, err
	}
	fc, err := flat.NewConfig(kern)
	if err != nil {
		return nil, err
	}
	return flat.NewRunner(fc, kern, sim.Synchronous{}, flat.Options{
		Options:       sim.Options{Seed: 1, MaxSteps: maxSteps},
		Telemetry:     tel,
		TelemetryMeta: telemetry.RunMeta{Seed: 0},
	})
}

// warm advances a runner k steps without timing.
func warm(r *flat.Runner, k int) error {
	for i := 0; i < k; i++ {
		if done, err := r.Step(); done {
			return fmt.Errorf("run ended during warm-up: %v", err)
		}
	}
	return nil
}

// timeWindow times steps consecutive steps, returning ns/step and
// allocs/step. It never runs the collector: a forced GC would mark the on
// arm's sizable flight ring right before its window — and not the off
// arm's small heap before its — leaving an arm-correlated thermal and
// cache footprint. Callers quiesce the heap once, before the first window.
func timeWindow(r *flat.Runner, steps int) (ns, aps float64, err error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < steps; i++ {
		if done, err := r.Step(); done {
			return 0, 0, fmt.Errorf("run ended during measurement: %v", err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	fs := float64(steps)
	return float64(elapsed.Nanoseconds()) / fs, float64(m1.Mallocs-m0.Mallocs) / fs, nil
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// measureOffOn compares ns/step with telemetry off and fully on at size n.
// Telemetry never feeds back into scheduling, so an off and an on runner
// over the same seed walk identical trajectories; both are warmed in
// lockstep, then timed over paired micro-windows at identical step ranges,
// alternating which arm goes first. The reported ratio is the median of
// the per-pair on/off ratios: each pair sees the same wavefront size and
// (nearly) the same machine conditions, which cancels the minutes-scale
// CPU noise that independent long windows cannot — observed swings on one
// box exceeded ±10% between back-to-back long-window runs, far above the
// effect being measured. After warm-up the heap is collected once and the
// GC pacer is disabled for the rest of the measurement: both steady-state
// paths run at zero allocs/step, so no collection is needed, and any GC
// inside the measured region would bill the on arm's sizable flight ring
// (its mark work, its cache and turbo footprint) to whichever window it
// happened to land in.
func measureOffOn(n, warmup, window, pairs int) (off, on, ratio, apsOff, apsOn float64, err error) {
	maxSteps := warmup + pairs*window + 1
	rOff, err := newFlatStepper(n, nil, maxSteps)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer rOff.Close()
	rOn, err := newFlatStepper(n, telemetry.New(fullConfig()), maxSteps)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer rOn.Close()
	if err := warm(rOff, warmup); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if err := warm(rOn, warmup); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	offNS := make([]float64, 0, pairs)
	onNS := make([]float64, 0, pairs)
	ratios := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		var nsOff, nsOn, aOff, aOn float64
		if i%2 == 0 {
			nsOff, aOff, err = timeWindow(rOff, window)
			if err == nil {
				nsOn, aOn, err = timeWindow(rOn, window)
			}
		} else {
			nsOn, aOn, err = timeWindow(rOn, window)
			if err == nil {
				nsOff, aOff, err = timeWindow(rOff, window)
			}
		}
		if err != nil {
			return 0, 0, 0, 0, 0, err
		}
		offNS = append(offNS, nsOff)
		onNS = append(onNS, nsOn)
		ratios = append(ratios, nsOn/nsOff)
		apsOff += aOff / float64(pairs)
		apsOn += aOn / float64(pairs)
	}
	return median(offNS), median(onNS), median(ratios), apsOff, apsOn, nil
}

// TestTelemetryOverheadGate is the CI gate for the "≤5% at N=100k" claim:
// fully-enabled telemetry (timing + series + spans + flight recorder) must
// cost at most 5% ns/step over the disabled path on a 100k-node ring.
// Gated behind TELEMETRY_OVERHEAD=1 — it is a timing measurement, useless
// under -race or on a loaded box.
func TestTelemetryOverheadGate(t *testing.T) {
	if os.Getenv("TELEMETRY_OVERHEAD") != "1" {
		t.Skip("set TELEMETRY_OVERHEAD=1 to run the overhead gate")
	}
	// Warm past two full flight-ring rotations (depth 8 × every 1024) so the
	// measurement sees the steady state: recycled schedule slots (first-pass
	// fill and first-revisit regrowth both behind us) and recycled
	// checkpoint buffers.
	off, on, ratio, _, _, err := measureOffOn(100_000, 17_000, 125, 48)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("N=100k ring: off %.0f ns/step, on %.0f ns/step, median paired ratio %.4f", off, on, ratio)
	if ratio > 1.05 {
		t.Fatalf("telemetry overhead %.2f%% exceeds the 5%% budget", (ratio-1)*100)
	}
}

// TestTelemetryOverheadTable emits the EXPERIMENTS.md overhead table rows
// (markdown, off/on ns/step and allocs/step at N ∈ {10k, 100k, 1M}).
// Every size uses the gate's protocol — warm past two full flight-ring
// rotations, then paired micro-windows — so the rows compare steady-state
// cost, not the one-time ring fill. Gated behind TELEMETRY_TABLE=1; run on
// a quiet box and paste the output.
func TestTelemetryOverheadTable(t *testing.T) {
	if os.Getenv("TELEMETRY_TABLE") != "1" {
		t.Skip("set TELEMETRY_TABLE=1 to emit the overhead table")
	}
	fmt.Println("| N (ring) | off ns/step | on ns/step | overhead | off allocs/step | on allocs/step |")
	fmt.Println("|---:|---:|---:|---:|---:|---:|")
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		off, on, ratio, apsOff, apsOn, err := measureOffOn(n, 17_000, 125, 48)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("| %d | %.0f | %.0f | %+.1f%% | %.2f | %.2f |\n",
			n, off, on, (ratio-1)*100, apsOff, apsOn)
	}
}
