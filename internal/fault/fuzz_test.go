package fault_test

import (
	"errors"
	"math/rand"
	"testing"

	"snappif/internal/check"
	"snappif/internal/core"
	"snappif/internal/fault"
	"snappif/internal/graph"
	"snappif/internal/sim"
)

// fuzzTopologies are the small networks the injector fuzzers explore:
// small enough that a run to stabilization is cheap, diverse enough to
// cover a tree, a cycle, a hub, a dense graph, and a grid.
func fuzzTopologies(tb testing.TB) []*graph.Graph {
	tb.Helper()
	var out []*graph.Graph
	for _, mk := range []func() (*graph.Graph, error){
		func() (*graph.Graph, error) { return graph.Line(4) },
		func() (*graph.Graph, error) { return graph.Ring(5) },
		func() (*graph.Graph, error) { return graph.Star(5) },
		func() (*graph.Graph, error) { return graph.Complete(4) },
		func() (*graph.Graph, error) { return graph.Grid(2, 3) },
	} {
		g, err := mk()
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, g)
	}
	return out
}

// FuzzInjectorRecovery is the injector contract fuzzer. For every injector
// and any seed it checks that:
//
//  1. the injected configuration stays within the variable domains
//     (injectors corrupt values, never invent out-of-domain ones);
//  2. the protocol recovers: a run from the injected configuration reaches
//     an SBN configuration within a generous step bound — snap-stabilization
//     means no injector can produce a configuration the algorithm cannot
//     leave;
//  3. the standard invariants never fire along the recovery.
func FuzzInjectorRecovery(f *testing.F) {
	injectors := fault.All()
	for i := range injectors {
		f.Add(uint8(i%5), uint8(i), int64(i+1))
	}
	topos := fuzzTopologies(f)
	f.Fuzz(func(t *testing.T, topoIdx, injIdx uint8, seed int64) {
		g := topos[int(topoIdx)%len(topos)]
		inj := injectors[int(injIdx)%len(injectors)]
		pr, err := core.New(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.NewConfiguration(g, pr)
		inj.Apply(cfg, pr, rand.New(rand.NewSource(seed)))

		if err := check.Domains(cfg, pr); err != nil {
			t.Fatalf("injector %s left the domains: %v", inj.Name, err)
		}

		mon := check.NewMonitor(pr, check.StandardChecks())
		sawSBN := false
		res, err := sim.Run(cfg, pr, sim.DistributedRandom{P: 0.5}, sim.Options{
			Seed:      seed + 1,
			MaxSteps:  2000 * g.N(),
			Observers: []sim.Observer{mon},
			StopWhen: func(rs *sim.RunState) bool {
				if check.IsSBN(rs.Config, pr) {
					sawSBN = true
				}
				return sawSBN
			},
		})
		if err != nil && !errors.Is(err, sim.ErrStepLimit) {
			t.Fatal(err)
		}
		if len(mon.Records) != 0 {
			t.Fatalf("injector %s: invariant violated during recovery: %s",
				inj.Name, mon.Records[0].String())
		}
		if !sawSBN {
			t.Fatalf("injector %s: no SBN configuration within %d steps (steps=%d rounds=%d)",
				inj.Name, 2000*g.N(), res.Steps, res.Rounds)
		}
	})
}
