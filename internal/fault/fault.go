// Package fault builds the "arbitrary initial configurations" that
// snap-stabilization quantifies over: uniformly random states over the full
// variable domains, plus hand-crafted adversarial corruption patterns that
// target the algorithm's error-correction machinery (phantom trees, level
// inconsistencies, inflated counts, premature Fok waves, stale feedback).
//
// Injectors mutate a configuration in place. They always produce states
// inside the declared variable domains — the model guarantees domains (a
// variable physically cannot hold an out-of-domain value); transient faults
// scramble values *within* domains.
package fault

import (
	"math/rand"

	"snappif/internal/core"
	"snappif/internal/sim"
)

// GarbageMsgBit marks payload values that did not originate from a real
// root broadcast, so experiments can tell stale payloads from real ones.
// Real broadcasts use small counter values; corrupted registers get values
// with this bit set.
const GarbageMsgBit = uint64(1) << 63

// Injector is a named initial-configuration corruption.
type Injector struct {
	// Name identifies the pattern in experiment tables.
	Name string
	// Apply mutates c in place using rng.
	Apply func(c *sim.Configuration, pr *core.Protocol, rng *rand.Rand)
}

// garbageMsg returns a payload value recognizable as corruption.
func garbageMsg(rng *rand.Rand) uint64 {
	return GarbageMsgBit | uint64(rng.Int63())
}

// randomPhase returns a uniformly random phase.
func randomPhase(rng *rand.Rand) core.Phase {
	return []core.Phase{core.B, core.F, core.C}[rng.Intn(3)]
}

// setState writes s into the configuration (in a fresh box, via core.Set).
func setState(c *sim.Configuration, p int, s core.State) { core.Set(c, p, s) }

// getState reads p's state.
func getState(c *sim.Configuration, p int) core.State { return core.At(c, p) }

// UniformRandom scrambles every variable of every processor uniformly over
// its domain. This is the canonical "arbitrary configuration".
func UniformRandom() Injector {
	return Injector{
		Name: "uniform-random",
		Apply: func(c *sim.Configuration, pr *core.Protocol, rng *rand.Rand) {
			for p := 0; p < c.N(); p++ {
				s := core.State{
					Pif:   randomPhase(rng),
					Count: 1 + rng.Intn(pr.NPrime),
					Fok:   rng.Intn(2) == 0,
					Msg:   garbageMsg(rng),
					Agg:   rng.Int63(),
				}
				if p == pr.Root {
					s.Par = core.ParNone
					s.L = 0
				} else {
					nb := c.G.Neighbors(p)
					s.Par = nb[rng.Intn(len(nb))]
					s.L = 1 + rng.Intn(pr.Lmax)
				}
				s.Val = getState(c, p).Val
				setState(c, p, s)
			}
		},
	}
}

// PartialRandom scrambles each processor independently with the given
// probability, leaving the rest clean — models a transient fault hitting a
// subset of the network.
func PartialRandom(prob float64) Injector {
	uni := UniformRandom()
	return Injector{
		Name: "partial-random",
		Apply: func(c *sim.Configuration, pr *core.Protocol, rng *rand.Rand) {
			tmp := c.Clone()
			uni.Apply(tmp, pr, rng)
			for p := 0; p < c.N(); p++ {
				if rng.Float64() < prob {
					c.States[p] = tmp.States[p]
				}
			}
		},
	}
}

// PhantomTree plants a consistent-looking broadcast tree rooted at a random
// *non-root* processor: the phantom root is abnormal (its own parent
// relation cannot be justified) but its whole subtree looks locally normal,
// forcing the correction wave of Section 4.3 to dismantle it top-down.
func PhantomTree() Injector {
	return Injector{
		Name: "phantom-tree",
		Apply: func(c *sim.Configuration, pr *core.Protocol, rng *rand.Rand) {
			if c.N() < 2 {
				return
			}
			fake := rng.Intn(c.N())
			for fake == pr.Root {
				fake = rng.Intn(c.N())
			}
			parent := c.G.BFSTree(fake)
			dist := c.G.BFS(fake)
			msg := garbageMsg(rng)
			for p := 0; p < c.N(); p++ {
				s := getState(c, p)
				if p == pr.Root {
					// Keep the real root clean: it must still broadcast.
					s.Pif = core.C
					setState(c, p, s)
					continue
				}
				s.Pif = core.B
				s.Fok = false
				s.Count = 1
				s.Msg = msg
				if p == fake {
					// The phantom root pretends to be level Lmax-deep so
					// its children (level clamp below) stay plausible.
					nb := c.G.Neighbors(p)
					s.Par = nb[rng.Intn(len(nb))]
					s.L = 1
				} else {
					s.Par = parent[p]
					s.L = clampLevel(1+dist[p], pr.Lmax)
				}
				setState(c, p, s)
			}
		},
	}
}

// PrematureFok plants a legal-looking broadcast tree rooted at the real
// root with the Fok wave already (wrongly) raised and the root count forced
// to N: the feedback phase fires immediately for a broadcast that never
// happened. The observed "cycle" precedes any root B-action, so the
// specification tolerates it (Remark 1) — but the *next* real broadcast
// must still reach everyone.
func PrematureFok() Injector {
	return Injector{
		Name: "premature-fok",
		Apply: func(c *sim.Configuration, pr *core.Protocol, rng *rand.Rand) {
			plantTree(c, pr, rng, func(s *core.State) {
				s.Fok = true
				s.Count = pr.N
			})
		},
	}
}

// InflatedCounts plants a legal-looking broadcast tree whose Count values
// are all forced to the domain maximum N', violating GoodCount everywhere
// above the leaves.
func InflatedCounts() Injector {
	return Injector{
		Name: "inflated-counts",
		Apply: func(c *sim.Configuration, pr *core.Protocol, rng *rand.Rand) {
			plantTree(c, pr, rng, func(s *core.State) {
				s.Count = pr.NPrime
				s.Fok = false
			})
		},
	}
}

// StaleFeedback plants a tree in which a random half of the processors are
// already in feedback while their subtrees still broadcast — phase
// inversions that violate GoodPif along many edges.
func StaleFeedback() Injector {
	return Injector{
		Name: "stale-feedback",
		Apply: func(c *sim.Configuration, pr *core.Protocol, rng *rand.Rand) {
			plantTree(c, pr, rng, func(s *core.State) {
				if rng.Intn(2) == 0 {
					s.Pif = core.F
				}
				s.Fok = rng.Intn(2) == 0
			})
		},
	}
}

// MaxLevels sets every non-root processor broadcasting at level Lmax with a
// random parent: no processor can be anyone's potential parent
// (Pre_Potential requires L < Lmax), and levels are mutually inconsistent.
func MaxLevels() Injector {
	return Injector{
		Name: "max-levels",
		Apply: func(c *sim.Configuration, pr *core.Protocol, rng *rand.Rand) {
			for p := 0; p < c.N(); p++ {
				s := getState(c, p)
				if p == pr.Root {
					s.Pif = core.C
					setState(c, p, s)
					continue
				}
				nb := c.G.Neighbors(p)
				s.Pif = core.B
				s.Par = nb[rng.Intn(len(nb))]
				s.L = pr.Lmax
				s.Count = 1 + rng.Intn(pr.NPrime)
				s.Fok = rng.Intn(2) == 0
				s.Msg = garbageMsg(rng)
				setState(c, p, s)
			}
		},
	}
}

// StaleRegion plants the self-contained stale broadcast region that defeats
// the self-stabilizing baseline (see selfstab.PlantStaleRegion): three
// consecutive processors u–v–w at distance ≥ 2 from the root pointing only
// at each other, at levels near Lmax, with the rest of the network clean.
// Against the snap-stabilizing algorithm the region is harmless: the root's
// Count can never reach N while u, v, w are outside the legal tree, so the
// Fok wave — and with it every feedback — waits until the region has been
// dismantled and genuinely re-joined. On topologies with eccentricity < 4
// the injector leaves the configuration clean.
func StaleRegion() Injector {
	return Injector{
		Name: "stale-region",
		Apply: func(c *sim.Configuration, pr *core.Protocol, rng *rand.Rand) {
			dist := c.G.BFS(pr.Root)
			parent := c.G.BFSTree(pr.Root)
			far, farDist := -1, -1
			for p, d := range dist {
				if d > farDist {
					far, farDist = p, d
				}
			}
			if farDist < 4 {
				return
			}
			w := far
			v := parent[w]
			u := parent[v]
			lv := pr.Lmax - 1
			msg := garbageMsg(rng)
			set := func(p, par, l int) {
				s := getState(c, p)
				s.Pif = core.B
				s.Par = par
				s.L = l
				s.Count = 1
				s.Fok = false
				s.Msg = msg
				setState(c, p, s)
			}
			set(u, v, lv+1)
			set(v, w, lv) // abnormal: L_v ≠ L_w + 1
			set(w, v, lv+1)
		},
	}
}

// Clean is the identity injector: the normal starting configuration.
func Clean() Injector {
	return Injector{
		Name:  "clean",
		Apply: func(*sim.Configuration, *core.Protocol, *rand.Rand) {},
	}
}

// All returns every adversarial injector plus the uniform scrambler; Clean
// is excluded (it is the control, not a fault).
func All() []Injector {
	return []Injector{
		UniformRandom(),
		PartialRandom(0.5),
		PhantomTree(),
		PrematureFok(),
		InflatedCounts(),
		StaleFeedback(),
		MaxLevels(),
		StaleRegion(),
	}
}

// ByName returns the injector with the given Name — Clean or any member of
// All(). Serialized hunt scenarios reference injectors by name; the boolean
// reports whether the name is known.
func ByName(name string) (Injector, bool) {
	if name == "" || name == "clean" {
		return Clean(), true
	}
	for _, inj := range All() {
		if inj.Name == name {
			return inj, true
		}
	}
	return Injector{}, false
}

// plantTree writes a structurally consistent broadcast tree rooted at the
// real root (BFS tree, correct levels, Pif = B, stale payload), then lets
// mutate corrupt each state.
func plantTree(c *sim.Configuration, pr *core.Protocol, rng *rand.Rand, mutate func(*core.State)) {
	parent := c.G.BFSTree(pr.Root)
	dist := c.G.BFS(pr.Root)
	msg := garbageMsg(rng)
	for p := 0; p < c.N(); p++ {
		s := getState(c, p)
		s.Pif = core.B
		s.Msg = msg
		s.Count = 1
		s.Fok = false
		if p == pr.Root {
			s.Par = core.ParNone
			s.L = 0
		} else {
			s.Par = parent[p]
			s.L = clampLevel(dist[p], pr.Lmax)
		}
		mutate(&s)
		if p == pr.Root {
			// Re-clamp root invariant fields whatever mutate did.
			s.Par = core.ParNone
			s.L = 0
			if s.Count < 1 {
				s.Count = 1
			}
		}
		setState(c, p, s)
	}
}

// clampLevel keeps an intended level inside [1,Lmax].
func clampLevel(l, lmax int) int {
	if l < 1 {
		return 1
	}
	if l > lmax {
		return lmax
	}
	return l
}
