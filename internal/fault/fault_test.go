package fault_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"snappif/internal/check"
	"snappif/internal/core"
	"snappif/internal/fault"
	"snappif/internal/graph"
	"snappif/internal/sim"
)

func build(t *testing.T, n int, seed int64) (*core.Protocol, *sim.Configuration) {
	t.Helper()
	g, err := graph.RandomConnected(n, 0.3, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	return pr, sim.NewConfiguration(g, pr)
}

func TestInjectorsPreserveDomains(t *testing.T) {
	// A transient fault scrambles values *within* their domains — the
	// model's variables cannot physically hold out-of-domain values. Every
	// injector must respect that.
	for _, inj := range append(fault.All(), fault.Clean()) {
		t.Run(inj.Name, func(t *testing.T) {
			for seed := int64(0); seed < 50; seed++ {
				pr, cfg := build(t, 10, 3)
				inj.Apply(cfg, pr, rand.New(rand.NewSource(seed)))
				if err := check.Domains(cfg, pr); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestInjectorsAreDeterministic(t *testing.T) {
	for _, inj := range fault.All() {
		t.Run(inj.Name, func(t *testing.T) {
			pr, cfg1 := build(t, 10, 3)
			_, cfg2 := build(t, 10, 3)
			inj.Apply(cfg1, pr, rand.New(rand.NewSource(7)))
			inj.Apply(cfg2, pr, rand.New(rand.NewSource(7)))
			for p := range cfg1.States {
				if core.At(cfg1, p) != core.At(cfg2, p) {
					t.Fatalf("processor %d differs across identical seeds", p)
				}
			}
		})
	}
}

func TestUniformRandomActuallyScrambles(t *testing.T) {
	pr, cfg := build(t, 12, 3)
	before := make([]core.State, len(cfg.States))
	for p := range cfg.States {
		before[p] = core.At(cfg, p)
	}
	fault.UniformRandom().Apply(cfg, pr, rand.New(rand.NewSource(1)))
	changed := 0
	for p := range cfg.States {
		if core.At(cfg, p) != before[p] {
			changed++
		}
	}
	if changed < len(cfg.States)/2 {
		t.Fatalf("only %d/%d processors changed", changed, len(cfg.States))
	}
}

func TestUniformRandomPreservesApplicationValues(t *testing.T) {
	// Faults corrupt protocol state; the application inputs (Val) are the
	// payload under protection and stay intact.
	pr, cfg := build(t, 8, 3)
	for p := range cfg.States {
		s := core.At(cfg, p)
		s.Val = int64(p * 11)
		core.Set(cfg, p, s)
	}
	fault.UniformRandom().Apply(cfg, pr, rand.New(rand.NewSource(5)))
	for p := range cfg.States {
		if got := core.At(cfg, p).Val; got != int64(p*11) {
			t.Fatalf("Val[%d] = %d, want %d", p, got, p*11)
		}
	}
}

func TestGarbageMsgsAreMarked(t *testing.T) {
	pr, cfg := build(t, 8, 3)
	fault.UniformRandom().Apply(cfg, pr, rand.New(rand.NewSource(2)))
	for p := range cfg.States {
		if msg := core.At(cfg, p).Msg; msg&fault.GarbageMsgBit == 0 {
			t.Fatalf("processor %d got unmarked garbage payload %d", p, msg)
		}
	}
}

func TestPhantomTreeKeepsRootClean(t *testing.T) {
	pr, cfg := build(t, 12, 3)
	fault.PhantomTree().Apply(cfg, pr, rand.New(rand.NewSource(3)))
	if got := core.At(cfg, pr.Root).Pif; got != core.C {
		t.Fatalf("root phase = %v, want C", got)
	}
	// Everyone else broadcasts in the phantom tree.
	broadcasting := 0
	for p := range cfg.States {
		if p != pr.Root && core.At(cfg, p).Pif == core.B {
			broadcasting++
		}
	}
	if broadcasting != cfg.N()-1 {
		t.Fatalf("%d/%d processors broadcasting", broadcasting, cfg.N()-1)
	}
}

func TestInflatedCountsViolateGoodCount(t *testing.T) {
	pr, cfg := build(t, 12, 3)
	fault.InflatedCounts().Apply(cfg, pr, rand.New(rand.NewSource(4)))
	if len(check.Abnormal(cfg, pr)) == 0 {
		t.Fatal("inflated counts produced no abnormal processor")
	}
}

func TestStaleRegionShape(t *testing.T) {
	g, err := graph.Line(9)
	if err != nil {
		t.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	cfg := sim.NewConfiguration(g, pr)
	fault.StaleRegion().Apply(cfg, pr, rand.New(rand.NewSource(1)))
	// Exactly three processors broadcast, all at levels ≥ Lmax-1, and
	// exactly one of them is abnormal.
	region := 0
	for p := range cfg.States {
		s := core.At(cfg, p)
		if s.Pif == core.B {
			region++
			if s.L < pr.Lmax-1 {
				t.Fatalf("region member %d at low level %d", p, s.L)
			}
		}
	}
	if region != 3 {
		t.Fatalf("region size = %d, want 3", region)
	}
	if ab := check.Abnormal(cfg, pr); len(ab) != 1 {
		t.Fatalf("abnormal = %v, want exactly one", ab)
	}
}

func TestStaleRegionNoopOnSmallEccentricity(t *testing.T) {
	g, err := graph.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	cfg := sim.NewConfiguration(g, pr)
	fault.StaleRegion().Apply(cfg, pr, rand.New(rand.NewSource(1)))
	if !check.IsAllClean(cfg) {
		t.Fatal("stale region planted on a diameter-1 graph")
	}
}

// Property: after any injector with any seed on any small random graph, a
// broadcast still completes and satisfies the spec — the combined fault ×
// snap-stabilization property, driven by testing/quick.
func TestAnyFaultAnySeedStillSnap(t *testing.T) {
	injs := fault.All()
	f := func(seed int64, pick uint8, nRaw uint8) bool {
		n := int(nRaw%12) + 4
		g, err := graph.RandomConnected(n, 0.25, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		pr := core.MustNew(g, 0)
		cfg := sim.NewConfiguration(g, pr)
		inj := injs[int(pick)%len(injs)]
		inj.Apply(cfg, pr, rand.New(rand.NewSource(seed+1)))
		obs := check.NewCycleObserver(pr)
		if _, err := sim.Run(cfg, pr, sim.DistributedRandom{P: 0.6}, sim.Options{
			Seed:      seed + 2,
			Observers: []sim.Observer{obs},
			StopWhen:  obs.StopAfterCycles(1),
		}); err != nil {
			return false
		}
		return obs.CompletedCycles() == 1 && obs.Cycles[0].OK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
