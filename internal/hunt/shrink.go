package hunt

import (
	"fmt"

	"snappif/internal/check"
	"snappif/internal/core"
	"snappif/internal/graph"
	"snappif/internal/obs"
	"snappif/internal/sim"
)

// ShrinkOptions configures Shrink.
type ShrinkOptions struct {
	// MaxRuns bounds the total candidate executions (0 = 4000).
	MaxRuns int
	// Checks are the invariants the failure predicate evaluates (nil =
	// check.StandardChecks).
	Checks []check.Check
}

// ShrinkStats summarizes a shrink.
type ShrinkStats struct {
	// Runs counts candidate executions, including normalization runs.
	Runs int
	// Check is the failing check the shrink preserved.
	Check string
	// FromSteps/ToSteps are the schedule lengths before and after.
	FromSteps, ToSteps int
	// FromN/ToN are the network sizes before and after.
	FromN, ToN int
}

// Shrink minimizes a failing scenario while preserving its failure: the
// result still violates the *same* named check as the input (matching only
// "some violation" would let the minimizer wander to an unrelated bug).
// Three reduction passes run to fixpoint under the run budget:
//
//  1. ddmin over the schedule — drop contiguous step segments;
//  2. de-corruption — reset one processor's initial state at a time to the
//     protocol's clean state;
//  3. topology shrinking — remove one non-root processor at a time,
//     keeping the subgraph connected and remapping IDs, parents, and the
//     schedule.
//
// The result is normalized: its Init is an explicit snapshot and its
// Schedule is the verbatim executed log of its own failing run, so
// replaying it is bit-identical and deterministic.
func Shrink(sc *Scenario, opt ShrinkOptions) (*Scenario, *ShrinkStats, error) {
	checks := opt.Checks
	if checks == nil {
		checks = check.StandardChecks()
	}
	maxRuns := opt.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 4000
	}
	stats := &ShrinkStats{}

	cur, rep, err := Normalize(sc, checks)
	stats.Runs++
	if err != nil {
		return nil, nil, err
	}
	if len(rep.Violations) == 0 {
		return nil, nil, fmt.Errorf("hunt: scenario does not fail; nothing to shrink")
	}
	target := rep.Violations[0].Check
	stats.Check = target
	stats.FromSteps = len(cur.Schedule)
	stats.FromN = cur.Topology.N

	fails := func(cand *Scenario) bool {
		if stats.Runs >= maxRuns {
			return false
		}
		stats.Runs++
		rep, err := cand.Run(checks, nil)
		if err != nil {
			return false
		}
		for _, v := range rep.Violations {
			if v.Check == target {
				return true
			}
		}
		return false
	}

	for changed := true; changed && stats.Runs < maxRuns; {
		changed = false
		if next, ok := ddminSchedule(cur, fails); ok {
			cur, changed = next, true
		}
		if next, ok := decorrupt(cur, fails); ok {
			cur, changed = next, true
		}
		if next, ok := shrinkTopology(cur, fails); ok {
			cur, changed = next, true
		}
	}

	// Ground the result: replace the (possibly tolerantly matched)
	// schedule with the exact executed log of the shrunk scenario's own
	// run, so the artifact replays strictly and bit-identically.
	out, rep, err := Normalize(cur, checks)
	stats.Runs++
	if err != nil {
		return nil, nil, err
	}
	if len(rep.Violations) == 0 {
		// Cannot happen: cur failed under the same checks. Guard anyway.
		return nil, nil, fmt.Errorf("hunt: shrunk scenario stopped failing during normalization")
	}
	stats.ToSteps = len(out.Schedule)
	stats.ToN = out.Topology.N
	return out, stats, nil
}

// Normalize runs the scenario and rewrites it into its explicit, exactly
// replayable form: Init becomes a concrete snapshot of the post-injection
// initial configuration, and Schedule becomes the executed step log
// truncated at the first violation (or the full log when the run is
// clean). The returned report is the run that produced the schedule.
func Normalize(sc *Scenario, checks []check.Check) (*Scenario, *Report, error) {
	cfg0, _, _, err := sc.build()
	if err != nil {
		return nil, nil, err
	}
	rep, err := sc.Run(checks, nil)
	if err != nil {
		return nil, nil, err
	}
	out := sc.Clone()
	snap := obs.CaptureSnapshot(cfg0)
	out.Init = &snap
	out.Fault = ""
	sched := rep.Executed
	if len(rep.Violations) > 0 {
		if v := rep.Violations[0].Step; v <= len(sched) {
			sched = sched[:v]
		}
	}
	out.Schedule = ToSchedule(sched)
	out.Daemon = ""
	out.MaxSteps = 0
	return out, rep, nil
}

// ddminSchedule minimizes the schedule by removing contiguous segments
// (the classic ddmin loop over step indices).
func ddminSchedule(sc *Scenario, fails func(*Scenario) bool) (*Scenario, bool) {
	cur := sc
	improved := false
	n := 2
	for len(cur.Schedule) >= 2 {
		chunk := (len(cur.Schedule) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur.Schedule); start += chunk {
			end := start + chunk
			if end > len(cur.Schedule) {
				end = len(cur.Schedule)
			}
			cand := cur.Clone()
			cand.Schedule = append(cand.Schedule[:start:start], cur.Schedule[end:]...)
			if fails(cand) {
				cur, improved, reduced = cand, true, true
				if n > 2 {
					n--
				}
				break
			}
		}
		if !reduced {
			if n >= len(cur.Schedule) {
				break
			}
			n *= 2
			if n > len(cur.Schedule) {
				n = len(cur.Schedule)
			}
		}
	}
	if !improved {
		return nil, false
	}
	return cur, true
}

// decorrupt resets one processor's initial state at a time to the
// protocol's clean starting state, keeping resets that preserve the
// failure.
func (sc *Scenario) cleanSnapshot() (*obs.Snapshot, error) {
	g, err := sc.Graph()
	if err != nil {
		return nil, err
	}
	var opts []core.Option
	if sc.Lmax > 0 {
		opts = append(opts, core.WithLmax(sc.Lmax))
	}
	if sc.NPrime > 0 {
		opts = append(opts, core.WithNPrime(sc.NPrime))
	}
	pr, err := core.New(g, sc.Root, opts...)
	if err != nil {
		return nil, err
	}
	snap := obs.CaptureSnapshot(sim.NewConfiguration(g, pr))
	return &snap, nil
}

func decorrupt(sc *Scenario, fails func(*Scenario) bool) (*Scenario, bool) {
	if sc.Init == nil {
		return nil, false
	}
	clean, err := sc.cleanSnapshot()
	if err != nil {
		return nil, false
	}
	cur := sc
	improved := false
	for p := 0; p < cur.Topology.N; p++ {
		if snapProcEqual(cur.Init, clean, p) {
			continue
		}
		cand := cur.Clone()
		copySnapProc(cand.Init, clean, p)
		if fails(cand) {
			cur, improved = cand, true
		}
	}
	if !improved {
		return nil, false
	}
	return cur, true
}

// snapProcEqual reports whether processor p's state is identical in both
// snapshots.
func snapProcEqual(a, b *obs.Snapshot, p int) bool {
	return a.Pif[p] == b.Pif[p] && a.Par[p] == b.Par[p] && a.L[p] == b.L[p] &&
		a.Count[p] == b.Count[p] && a.Fok[p] == b.Fok[p] && a.Msg[p] == b.Msg[p] &&
		a.Val[p] == b.Val[p] && a.Agg[p] == b.Agg[p]
}

// copySnapProc overwrites processor p's state in dst with src's.
func copySnapProc(dst, src *obs.Snapshot, p int) {
	pif := []byte(dst.Pif)
	pif[p] = src.Pif[p]
	dst.Pif = string(pif)
	dst.Par[p] = src.Par[p]
	dst.L[p] = src.L[p]
	dst.Count[p] = src.Count[p]
	dst.Fok[p] = src.Fok[p]
	dst.Msg[p] = src.Msg[p]
	dst.Val[p] = src.Val[p]
	dst.Agg[p] = src.Agg[p]
}

// shrinkTopology removes one non-root processor at a time (highest ID
// first), keeping removals that leave the network connected and the
// failure intact.
func shrinkTopology(sc *Scenario, fails func(*Scenario) bool) (*Scenario, bool) {
	cur := sc
	improved := false
	for v := cur.Topology.N - 1; v >= 0; v-- {
		if cur.Topology.N <= 2 || v >= cur.Topology.N || v == cur.Root {
			continue
		}
		cand, ok := removeProc(cur, v)
		if !ok {
			continue
		}
		if fails(cand) {
			cur, improved = cand, true
		}
	}
	if !improved {
		return nil, false
	}
	return cur, true
}

// removeProc builds the scenario with processor v deleted: IDs above v
// shift down by one; edges at v disappear (the candidate is rejected if
// that disconnects the network); initial parents pointing at v are redirected
// to the lowest-ID remaining neighbor; schedule entries at v are dropped
// (steps left empty disappear).
func removeProc(sc *Scenario, v int) (*Scenario, bool) {
	ren := func(p int) int {
		if p > v {
			return p - 1
		}
		return p
	}
	var edges [][2]int
	for _, e := range sc.Topology.Edges {
		if e[0] == v || e[1] == v {
			continue
		}
		edges = append(edges, [2]int{ren(e[0]), ren(e[1])})
	}
	g, err := graph.New(sc.Topology.Name, sc.Topology.N-1, edges)
	if err != nil {
		return nil, false // disconnected or degenerate
	}
	out := sc.Clone()
	out.Topology = TopologyOf(g)
	out.Root = ren(sc.Root)
	if sc.Lmax > 0 && sc.Lmax < g.N()-1 {
		return nil, false // cannot happen (shrinking lowers N), but guard
	}
	if out.Init != nil {
		snap, ok := removeSnapProc(out.Init, v, g, out.Root)
		if !ok {
			return nil, false
		}
		out.Init = snap
	}
	var sched [][][2]int
	for _, step := range out.Schedule {
		var ns [][2]int
		for _, pa := range step {
			if pa[0] == v {
				continue
			}
			ns = append(ns, [2]int{ren(pa[0]), pa[1]})
		}
		if len(ns) > 0 {
			sched = append(sched, ns)
		}
	}
	out.Schedule = sched
	return out, true
}

// removeSnapProc deletes processor v from the snapshot, remapping parent
// pointers; a remaining processor whose parent was v is re-pointed at its
// lowest-ID neighbor in the shrunk graph g (IDs in g are post-removal).
func removeSnapProc(snap *obs.Snapshot, v int, g *graph.Graph, root int) (*obs.Snapshot, bool) {
	n := len(snap.Par)
	out := obs.Snapshot{T: snap.T, Run: snap.Run, Name: snap.Name}
	pif := make([]byte, 0, n-1)
	for p := 0; p < n; p++ {
		if p == v {
			continue
		}
		np := p
		if p > v {
			np = p - 1
		}
		par := snap.Par[p]
		switch {
		case par == core.ParNone:
			// The root keeps ⊥.
		case par == v:
			nb := g.Neighbors(np)
			if len(nb) == 0 {
				return nil, false
			}
			par = nb[0]
		case par > v:
			par = par - 1
		}
		if np == root {
			par = core.ParNone
		}
		pif = append(pif, snap.Pif[p])
		out.Par = append(out.Par, par)
		out.L = append(out.L, snap.L[p])
		out.Count = append(out.Count, snap.Count[p])
		out.Fok = append(out.Fok, snap.Fok[p])
		out.Msg = append(out.Msg, snap.Msg[p])
		out.Val = append(out.Val, snap.Val[p])
		out.Agg = append(out.Agg, snap.Agg[p])
	}
	out.Pif = string(pif)
	return &out, true
}
