package hunt

import (
	"math/rand"
	"sort"

	"snappif/internal/check"
	"snappif/internal/core"
	"snappif/internal/sim"
)

// GreedyDaemon is the guided-search adversary: a sim.Daemon that, at every
// step, evaluates a handful of candidate choices by rolling each one out
// for Depth steps on a scratch configuration and executes the candidate
// whose rollout scores worst (highest) under Objective. It plugs into
// sim.Runner beside the heuristic Adversarial daemon; the Runner's aging
// keeps it weakly fair like any other daemon.
//
// The inner loop restores the scratch configuration with
// Configuration.CopyFrom, so a rollout's per-step cost stays on the
// engine's zero-allocation path. GreedyDaemon is deterministic: it never
// reads the runner's RNG, candidate order is a fixed spread over the
// enabled list, and ties break toward the higher processor ID (matching
// the Adversarial daemon's convention).
type GreedyDaemon struct {
	// Objective scores rollouts.
	Objective Objective
	// Depth is the rollout horizon in steps (0 = 2·N).
	Depth int
	// MaxCandidates caps the rollouts per step (0 = 8).
	MaxCandidates int
	// Checks, when non-nil, are evaluated after every rollout step and
	// feed Eval.Violations (needed by the Violations objective).
	Checks []check.Check

	proto   sim.Protocol
	core    *core.Protocol
	scratch *sim.Configuration
	seq     seqDaemon
	buf     [1]sim.Choice
}

var _ sim.Daemon = (*GreedyDaemon)(nil)

// NewGreedy builds a greedy search daemon. rollout is the protocol
// instance the rollouts execute — it must be a SEPARATE instance from the
// one driving the real run (built on the same graph with the same
// parameters), because rollouts advance protocol-internal state (the
// payload counter) that must not leak into the real execution; pr is
// rollout's underlying core protocol, which objectives evaluate against.
func NewGreedy(rollout sim.Protocol, pr *core.Protocol, obj Objective) *GreedyDaemon {
	return &GreedyDaemon{Objective: obj, proto: rollout, core: pr}
}

// Name implements sim.Daemon.
func (d *GreedyDaemon) Name() string { return "greedy-" + d.Objective.Name }

// Select implements sim.Daemon. It executes exactly one choice per step.
func (d *GreedyDaemon) Select(_ int, c *sim.Configuration, enabled []sim.Choice, _ *rand.Rand) []sim.Choice {
	if len(enabled) == 1 {
		d.buf[0] = enabled[0]
		return d.buf[:1]
	}
	depth := d.Depth
	if depth <= 0 {
		depth = 2 * c.N()
	}
	cand := d.MaxCandidates
	if cand <= 0 {
		cand = 8
	}
	if cand > len(enabled) {
		cand = len(enabled)
	}
	besti := -1
	var best float64
	for k := 0; k < cand; k++ {
		i := k * len(enabled) / cand
		score := d.rollout(c, enabled[i], depth)
		if besti < 0 || score > best ||
			(score == best && enabled[i].Proc > enabled[besti].Proc) {
			besti, best = i, score
		}
	}
	d.buf[0] = enabled[besti]
	return d.buf[:1]
}

// rollout plays first and then Depth-1 further steps of a fixed nasty
// policy on the scratch configuration, returning the objective's score.
func (d *GreedyDaemon) rollout(c *sim.Configuration, first sim.Choice, depth int) float64 {
	if d.scratch == nil || d.scratch.N() != c.N() {
		d.scratch = c.Clone()
	} else {
		d.scratch.CopyFrom(c)
	}
	d.seq = seqDaemon{first: first}
	var mon *check.Monitor
	var observers []sim.Observer
	if d.Checks != nil {
		mon = check.NewMonitor(d.core, d.Checks)
		observers = []sim.Observer{mon}
	}
	r := sim.NewRunner(d.scratch, d.proto, &d.seq, sim.Options{
		MaxSteps:  depth + 1,
		Seed:      1,
		Observers: observers,
		StopWhen:  func(rs *sim.RunState) bool { return rs.Steps >= depth },
	})
	for {
		if done, _ := r.Step(); done {
			break
		}
	}
	res := r.Result()
	ev := Eval{
		Config:   d.scratch,
		Proto:    d.core,
		Steps:    res.Steps,
		Moves:    res.Moves,
		Rounds:   res.Rounds,
		Terminal: res.Terminal,
	}
	if mon != nil {
		ev.Violations = len(mon.Records)
	}
	return d.Objective.Score(ev)
}

// seqDaemon drives a rollout: the fixed first choice, then always the
// highest-ID enabled processor (a deterministic nasty continuation).
type seqDaemon struct {
	first sim.Choice
	used  bool
	buf   [1]sim.Choice
}

var _ sim.Daemon = (*seqDaemon)(nil)

// Name implements sim.Daemon.
func (d *seqDaemon) Name() string { return "hunt-rollout" }

// Select implements sim.Daemon.
func (d *seqDaemon) Select(_ int, _ *sim.Configuration, enabled []sim.Choice, _ *rand.Rand) []sim.Choice {
	if !d.used {
		d.used = true
		for _, ch := range enabled {
			if ch == d.first {
				d.buf[0] = ch
				return d.buf[:1]
			}
		}
	}
	d.buf[0] = enabled[len(enabled)-1]
	return d.buf[:1]
}

// BeamOptions configures a beam search.
type BeamOptions struct {
	// Width is the beam width (0 = 4).
	Width int
	// Depth is the schedule length to search (0 = 3·N).
	Depth int
	// Branch caps the expansions per beam node (0 = 4).
	Branch int
	// RolloutDepth is the scoring rollout horizon (0 = 2·N).
	RolloutDepth int
	// Objective scores nodes (zero value = Rounds()).
	Objective Objective
	// Checks feed Eval.Violations during scoring rollouts.
	Checks []check.Check
}

// Beam searches for a schedule prefix of at most opt.Depth steps that
// maximizes the objective, starting from the scenario's initial
// configuration. Each candidate extension is scored by a bounded rollout
// (exactly like GreedyDaemon's, sharing its CopyFrom scratch path); the
// best opt.Width prefixes survive each level. The returned schedule is
// replayable by embedding it in the scenario (Scenario.Schedule =
// ToSchedule(schedule)); the search itself is deterministic.
func Beam(sc *Scenario, opt BeamOptions) (schedule [][]sim.Choice, score float64, err error) {
	cfg, proto, _, err := sc.build()
	if err != nil {
		return nil, 0, err
	}
	_, rollProto, rollCore, err := sc.build()
	if err != nil {
		return nil, 0, err
	}
	if opt.Objective.Score == nil {
		opt.Objective = Rounds()
	}
	width, depth, branch := opt.Width, opt.Depth, opt.Branch
	if width <= 0 {
		width = 4
	}
	if depth <= 0 {
		depth = 3 * cfg.N()
	}
	if branch <= 0 {
		branch = 4
	}
	scorer := &GreedyDaemon{
		Objective: opt.Objective,
		Depth:     opt.RolloutDepth,
		Checks:    opt.Checks,
		proto:     rollProto,
		core:      rollCore,
	}
	rdepth := opt.RolloutDepth
	if rdepth <= 0 {
		rdepth = 2 * cfg.N()
	}
	scoreOf := func(c *sim.Configuration) float64 {
		en := sim.EnabledChoices(c, proto)
		if len(en) == 0 {
			// Terminal: score the configuration as a zero-step rollout.
			return opt.Objective.Score(Eval{Config: c, Proto: rollCore, Terminal: true})
		}
		// Score via a rollout whose first move is the evaluation point's
		// best-known continuation — using the scorer's machinery keeps the
		// two search layers consistent.
		return scorer.rollout(c, en[len(en)-1], rdepth)
	}

	type node struct {
		cfg      *sim.Configuration
		schedule [][]sim.Choice
		score    float64
	}
	// The search keeps the Width best prefixes per level and returns the
	// best prefix of the deepest level reached: scores are evaluated at the
	// horizon (rollout from the prefix's end state), so they compare
	// meaningfully only within a level, not across levels.
	beam := []node{{cfg: cfg, score: scoreOf(cfg)}}
	for level := 0; level < depth; level++ {
		var next []node
		for _, nd := range beam {
			en := sim.EnabledChoices(nd.cfg, proto)
			if len(en) == 0 {
				continue
			}
			b := branch
			if b > len(en) {
				b = len(en)
			}
			for k := 0; k < b; k++ {
				i := k * len(en) / b
				child := node{cfg: nd.cfg.Clone()}
				child.cfg.States[en[i].Proc] = proto.Apply(child.cfg, en[i].Proc, en[i].Action)
				child.schedule = make([][]sim.Choice, len(nd.schedule)+1)
				copy(child.schedule, nd.schedule)
				child.schedule[len(nd.schedule)] = []sim.Choice{en[i]}
				child.score = scoreOf(child.cfg)
				next = append(next, child)
			}
		}
		if len(next) == 0 {
			break // every beam node is terminal
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].score > next[j].score })
		if len(next) > width {
			next = next[:width]
		}
		beam = next
	}
	return beam[0].schedule, beam[0].score, nil
}
