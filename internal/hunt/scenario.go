// Package hunt implements the counterexample hunter: a search-based
// adversary over the simulation engine (greedy rollout and beam-search
// daemons scored by configurable objectives), serializable replayable
// scenarios, and a ddmin-style shrinker that minimizes any failing
// execution to a small, deterministic artifact. See DESIGN.md §8.
//
// The package is part of the deterministic engine: same scenario, same
// bytes. It never reads the clock, never touches the global rand source,
// and never iterates a map.
package hunt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"snappif/internal/check"
	"snappif/internal/core"
	"snappif/internal/fault"
	"snappif/internal/graph"
	"snappif/internal/obs"
	"snappif/internal/sim"
	"snappif/internal/trace"
)

// SchemaVersion identifies the scenario JSON schema.
const SchemaVersion = 1

// Topology is the serializable form of a network: enough to rebuild the
// graph exactly (graph.New validates connectivity on load).
type Topology struct {
	Name  string   `json:"name"`
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// TopologyOf captures g.
func TopologyOf(g *graph.Graph) Topology {
	return Topology{Name: g.Name(), N: g.N(), Edges: g.Edges()}
}

// Scenario is a fully serializable execution: topology, protocol
// parameters, initial configuration (by injector name + seed, or as an
// explicit snapshot), and either an explicit per-step schedule or a named
// daemon with a step budget. Running a scenario twice produces
// bit-identical results, including its obs trace.
type Scenario struct {
	// V is the schema version (SchemaVersion).
	V int `json:"v"`
	// Name is a free-form label.
	Name string `json:"name,omitempty"`
	// Topology is the network.
	Topology Topology `json:"topology"`
	// Root is the PIF initiator.
	Root int `json:"root"`
	// Lmax overrides the default level bound N-1 when > 0.
	Lmax int `json:"lmax,omitempty"`
	// NPrime overrides the default Count bound N when > 0.
	NPrime int `json:"nprime,omitempty"`
	// Fault names the fault.Injector corrupting the initial configuration
	// ("" or "clean" = none). Ignored when Init is set.
	Fault string `json:"fault,omitempty"`
	// Seed seeds the injector; Seed+1 seeds the run (the harness
	// convention, see exp.stabilizeOnce).
	Seed int64 `json:"seed"`
	// Init, when set, is the explicit initial configuration (it overrides
	// Fault). Shrunk scenarios always carry one.
	Init *obs.Snapshot `json:"init,omitempty"`
	// Schedule, when non-empty, is the explicit per-step schedule: step i
	// executes exactly the listed (processor, action) pairs. A scenario
	// with a schedule ignores Daemon.
	Schedule [][][2]int `json:"schedule,omitempty"`
	// Daemon names the scheduler for schedule-free scenarios (see
	// DaemonNames; "" = dist-random).
	Daemon string `json:"daemon,omitempty"`
	// MaxSteps bounds a schedule-free run (0 = 200·N).
	MaxSteps int `json:"max_steps,omitempty"`
	// FairnessAge overrides the runner's weak-fairness bound (0 = 4·N).
	FairnessAge int `json:"fairness_age,omitempty"`
	// Plant names a test-only planted protocol bug (see Plants); "" runs
	// the unmodified protocol.
	Plant string `json:"plant,omitempty"`
	// MsgBase, when > 0, resumes the root's wave-payload counter at this
	// value instead of 1. Scenarios cut from the middle of a live run (the
	// telemetry flight recorder) carry it so replayed waves stamp the same
	// Msg payloads as the original execution.
	MsgBase uint64 `json:"msg_base,omitempty"`
	// Service, when set, makes this a serving-run scenario: an open-loop
	// arrival stream over per-initiator lanes instead of a single execution.
	// Service scenarios replay through service.ReplayScenario, not Run —
	// Root/Fault/Seed/Schedule/Daemon above are ignored.
	Service *ServiceSpec `json:"service,omitempty"`
}

// ServiceSpec captures everything a pipelined serving run (internal/service)
// needs to replay bit-identically: the engine, the per-lane setup, and the
// exact virtual-time arrival schedule. It lives here (not in the service
// package) so scenario files stay one self-contained schema; the service
// package owns the dump/replay conversions.
type ServiceSpec struct {
	// Engine is "sim", "flat", or "event".
	Engine string `json:"engine"`
	// Latency is the event engine's distribution spec (event.ParseLatency);
	// "" means the engine default.
	Latency string `json:"latency,omitempty"`
	// Initiators are the lane roots, in lane order.
	Initiators []int `json:"initiators"`
	// Faults names each lane's start-state injector ("" = clean).
	Faults []string `json:"faults,omitempty"`
	// SweepWorkers is forwarded to flat lanes (results are worker-count
	// independent; recorded for completeness).
	SweepWorkers int `json:"sweep_workers,omitempty"`
	// MaxTicks bounds the virtual clock (0 = service default).
	MaxTicks int64 `json:"max_ticks,omitempty"`
	// Serial replays the closed-loop baseline instead of pipelined serving.
	Serial bool `json:"serial,omitempty"`
	// Arrivals is the exact (t, lane, kind) request stream.
	Arrivals []ServiceArrival `json:"arrivals"`
}

// ServiceArrival is one request of a serving scenario's arrival stream.
type ServiceArrival struct {
	T    int64  `json:"t"`
	Lane int    `json:"lane"`
	Kind string `json:"kind"`
}

// Graph rebuilds the scenario's network, validating it. The node count is
// bounded by the edge count up front: a connected graph has N ≤ M+1, and
// checking it here keeps a hostile scenario claiming 10¹⁸ processors from
// allocating per-node slices before graph.New's own connectivity check can
// reject it.
func (sc *Scenario) Graph() (*graph.Graph, error) {
	if sc.Topology.N < 1 || sc.Topology.N > len(sc.Topology.Edges)+1 {
		return nil, fmt.Errorf("hunt: topology with %d processors and %d edges cannot be connected",
			sc.Topology.N, len(sc.Topology.Edges))
	}
	return graph.New(sc.Topology.Name, sc.Topology.N, sc.Topology.Edges)
}

// Clone returns a deep copy of the scenario.
func (sc *Scenario) Clone() *Scenario {
	out := *sc
	out.Topology.Edges = append([][2]int(nil), sc.Topology.Edges...)
	if sc.Init != nil {
		snap := cloneSnapshot(*sc.Init)
		out.Init = &snap
	}
	out.Schedule = make([][][2]int, len(sc.Schedule))
	for i, step := range sc.Schedule {
		out.Schedule[i] = append([][2]int(nil), step...)
	}
	if sc.Service != nil {
		svc := *sc.Service
		svc.Initiators = append([]int(nil), sc.Service.Initiators...)
		svc.Faults = append([]string(nil), sc.Service.Faults...)
		svc.Arrivals = append([]ServiceArrival(nil), sc.Service.Arrivals...)
		out.Service = &svc
	}
	return &out
}

func cloneSnapshot(s obs.Snapshot) obs.Snapshot {
	s.Par = append([]int(nil), s.Par...)
	s.L = append([]int(nil), s.L...)
	s.Count = append([]int(nil), s.Count...)
	s.Fok = append([]bool(nil), s.Fok...)
	s.Msg = append([]string(nil), s.Msg...)
	s.Val = append([]int64(nil), s.Val...)
	s.Agg = append([]int64(nil), s.Agg...)
	return s
}

// Marshal renders the scenario as indented JSON (stable byte-for-byte:
// struct fields marshal in declaration order).
func (sc *Scenario) Marshal() ([]byte, error) {
	sc.V = SchemaVersion
	return json.MarshalIndent(sc, "", "  ")
}

// Unmarshal parses a scenario.
func Unmarshal(data []byte) (*Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("hunt: scenario: %w", err)
	}
	if sc.V > SchemaVersion {
		return nil, fmt.Errorf("hunt: scenario schema v%d is newer than supported v%d", sc.V, SchemaVersion)
	}
	return &sc, nil
}

// build constructs the initial configuration, the protocol the engine runs
// (possibly plant-wrapped), and the underlying core protocol (which the
// invariant checks always evaluate against).
func (sc *Scenario) build() (*sim.Configuration, sim.Protocol, *core.Protocol, error) {
	g, err := sc.Graph()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("hunt: %w", err)
	}
	var opts []core.Option
	if sc.Lmax > 0 {
		opts = append(opts, core.WithLmax(sc.Lmax))
	}
	if sc.NPrime > 0 {
		opts = append(opts, core.WithNPrime(sc.NPrime))
	}
	if sc.MsgBase > 0 {
		opts = append(opts, core.WithFirstMsg(sc.MsgBase))
	}
	pr, err := core.New(g, sc.Root, opts...)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("hunt: %w", err)
	}
	var proto sim.Protocol = pr
	if sc.Plant != "" {
		pl, ok := PlantByName(sc.Plant)
		if !ok {
			return nil, nil, nil, fmt.Errorf("hunt: unknown plant %q", sc.Plant)
		}
		proto = pl.Wrap(pr)
	}
	cfg := sim.NewConfiguration(g, proto)
	if sc.Init != nil {
		if err := obs.RestoreSnapshot(*sc.Init, cfg); err != nil {
			return nil, nil, nil, fmt.Errorf("hunt: %w", err)
		}
		// The guards read st(c, Par_p) for every non-root processor, so an
		// out-of-range parent pointer in a hostile snapshot would panic the
		// engine; in-domain corruption (wrong neighbor, wrong level, …) is
		// what scenarios exist to carry and passes through untouched.
		for p := 0; p < cfg.N(); p++ {
			if par := core.At(cfg, p).Par; p != sc.Root && (par < 0 || par >= cfg.N()) {
				return nil, nil, nil, fmt.Errorf("hunt: snapshot parent %d at p%d out of range", par, p)
			}
		}
	} else if sc.Fault != "" && sc.Fault != "clean" {
		inj, ok := fault.ByName(sc.Fault)
		if !ok {
			return nil, nil, nil, fmt.Errorf("hunt: unknown fault injector %q", sc.Fault)
		}
		inj.Apply(cfg, pr, rand.New(rand.NewSource(sc.Seed)))
	}
	return cfg, proto, pr, nil
}

// DaemonNames lists the daemon names a schedule-free scenario accepts, in
// presentation order. "greedy-<objective>" is additionally accepted for
// every objective in Objectives().
func DaemonNames() []string {
	return []string{
		"dist-random", "synchronous", "central-random", "central-lowest",
		"central-highest", "central-roundrobin", "locally-central",
		"adversarial-lifo",
	}
}

// daemon constructs the scenario's named daemon. Greedy daemons get their
// own rollout protocol instance so rollouts never perturb the payload
// counter of the protocol driving the real run (replays must stay
// bit-identical).
func (sc *Scenario) daemon() (sim.Daemon, error) {
	name := sc.Daemon
	if strings.HasPrefix(name, "greedy-") {
		obj, ok := ObjectiveByName(strings.TrimPrefix(name, "greedy-"))
		if !ok {
			return nil, fmt.Errorf("hunt: unknown objective in daemon %q", name)
		}
		_, rollProto, rollCore, err := sc.build()
		if err != nil {
			return nil, err
		}
		return NewGreedy(rollProto, rollCore, obj), nil
	}
	switch name {
	case "", "dist-random":
		return sim.DistributedRandom{P: 0.5}, nil
	case "synchronous":
		return sim.Synchronous{}, nil
	case "central-random":
		return sim.Central{Order: sim.CentralRandom}, nil
	case "central-lowest":
		return sim.Central{Order: sim.CentralLowestID}, nil
	case "central-highest":
		return sim.Central{Order: sim.CentralHighestID}, nil
	case "central-roundrobin":
		return &sim.RoundRobin{}, nil
	case "locally-central":
		return sim.LocallyCentral{}, nil
	case "adversarial-lifo":
		return &sim.Adversarial{}, nil
	}
	return nil, fmt.Errorf("hunt: unknown daemon %q", name)
}

// Report is the outcome of one scenario run.
type Report struct {
	// Result is the engine's run summary.
	Result sim.Result
	// Violations lists every invariant violation, in step order.
	Violations []check.Violation
	// Executed is the executed schedule (one entry per committed step).
	Executed [][]sim.Choice
	// Exhausted reports that a schedule-free run spent its whole step
	// budget without violating anything (not an error: the budget is the
	// hunt's horizon, not a correctness bound).
	Exhausted bool
}

// Run executes the scenario under the given invariant checks (nil =
// check.StandardChecks). The run stops at the first violation, at schedule
// exhaustion, at a terminal configuration, or at the step budget. tr, when
// enabled, receives the full obs event stream (the caller remains
// responsible for Close).
func (sc *Scenario) Run(checks []check.Check, tr *obs.Tracer) (*Report, error) {
	if sc.Service != nil {
		return nil, fmt.Errorf("hunt: scenario %q is a serving run; replay it with service.ReplayScenario (pifhunt routes this automatically)", sc.Name)
	}
	cfg, proto, pr, err := sc.build()
	if err != nil {
		return nil, err
	}
	if checks == nil {
		checks = check.StandardChecks()
	}
	mon := check.NewMonitor(pr, checks)
	rec := trace.NewRecorder(proto, 0)
	observers := []sim.Observer{rec, mon}

	var d sim.Daemon
	var stop func(*sim.RunState) bool
	maxSteps := sc.MaxSteps
	var sd *scheduleDaemon
	if len(sc.Schedule) > 0 {
		sd = &scheduleDaemon{script: sc.script()}
		d = sd
		stop = func(*sim.RunState) bool { return len(mon.Records) > 0 || sd.Exhausted() }
		maxSteps = len(sd.script) + 1
	} else {
		d, err = sc.daemon()
		if err != nil {
			return nil, err
		}
		stop = mon.Stop()
		if maxSteps <= 0 {
			maxSteps = 200 * cfg.N()
		}
	}
	if tr.Enabled() {
		tr.BeginRun(cfg.G, d.Name(), sc.runSeed(), cfg)
		observers = append(observers, tr)
	}
	res, err := sim.Run(cfg, proto, d, sim.Options{
		MaxSteps:    maxSteps,
		Seed:        sc.runSeed(),
		FairnessAge: sc.FairnessAge,
		Observers:   observers,
		StopWhen:    stop,
	})
	rep := &Report{Result: res, Violations: mon.Records, Executed: executed(rec)}
	if err != nil {
		if errors.Is(err, sim.ErrStepLimit) && len(mon.Records) == 0 {
			rep.Exhausted = true
			return rep, nil
		}
		if !errors.Is(err, sim.ErrStepLimit) {
			return nil, err
		}
	}
	return rep, nil
}

// Trace runs the scenario with a full obs trace streamed as JSONL into w.
// The emitted bytes are a pure function of the scenario.
func (sc *Scenario) Trace(w io.Writer, checks []check.Check) (*Report, error) {
	_, _, pr, err := sc.build()
	if err != nil {
		return nil, err
	}
	tr := obs.New(w, obs.WithProtocol(pr))
	rep, rerr := sc.Run(checks, tr)
	if cerr := tr.Close(); cerr != nil && rerr == nil {
		return rep, cerr
	}
	return rep, rerr
}

// runSeed is the seed of the run's private RNG; the scenario Seed itself
// feeds the fault injector (mirroring the experiment harness convention).
func (sc *Scenario) runSeed() int64 { return sc.Seed + 1 }

// script converts the wire-format schedule into engine choices.
func (sc *Scenario) script() [][]sim.Choice {
	out := make([][]sim.Choice, len(sc.Schedule))
	for i, step := range sc.Schedule {
		chs := make([]sim.Choice, len(step))
		for j, pa := range step {
			chs[j] = sim.Choice{Proc: pa[0], Action: pa[1]}
		}
		out[i] = chs
	}
	return out
}

// ToSchedule converts executed engine choices into the wire format.
func ToSchedule(script [][]sim.Choice) [][][2]int {
	out := make([][][2]int, len(script))
	for i, step := range script {
		pas := make([][2]int, len(step))
		for j, ch := range step {
			pas[j] = [2]int{ch.Proc, ch.Action}
		}
		out[i] = pas
	}
	return out
}

// executed extracts the recorder's step log as a schedule.
func executed(rec *trace.Recorder) [][]sim.Choice {
	out := make([][]sim.Choice, len(rec.Events))
	for i, ev := range rec.Events {
		out[i] = ev.Executed
	}
	return out
}

// scheduleDaemon re-executes a recorded schedule tolerantly: each step it
// consumes script entries until one of them matches some enabled choice,
// preferring exact (processor, action) matches and falling back to
// same-processor matches (the shrinker perturbs initial states, which can
// change which action a processor has enabled). On a normalized scenario —
// whose schedule is the verbatim executed log of a previous run — every
// entry matches exactly and the replay is bit-identical, including the
// fairness-forced selections (ages evolve identically, so the runner never
// adds a choice the script does not already contain).
type scheduleDaemon struct {
	script [][]sim.Choice
	pos    int
	buf    []sim.Choice
}

var _ sim.Daemon = (*scheduleDaemon)(nil)

// Name implements sim.Daemon.
func (d *scheduleDaemon) Name() string { return "hunt-schedule" }

// Exhausted reports that every script entry has been consumed.
func (d *scheduleDaemon) Exhausted() bool { return d.pos >= len(d.script) }

// Select implements sim.Daemon.
func (d *scheduleDaemon) Select(_ int, _ *sim.Configuration, enabled []sim.Choice, _ *rand.Rand) []sim.Choice {
	d.buf = d.buf[:0]
	for d.pos < len(d.script) && len(d.buf) == 0 {
		want := d.script[d.pos]
		d.pos++
		for _, ch := range want {
			if pick, ok := matchChoice(enabled, ch); ok {
				d.buf = appendProcOnce(d.buf, pick)
			}
		}
	}
	if len(d.buf) == 0 {
		// Script exhausted without a match; the runner requires a non-empty
		// selection and the stop predicate fires right after this step.
		d.buf = append(d.buf, enabled[0])
	}
	return d.buf
}

// matchChoice finds ch among the enabled choices: exact match first, then
// any choice of the same processor.
func matchChoice(enabled []sim.Choice, ch sim.Choice) (sim.Choice, bool) {
	for _, e := range enabled {
		if e == ch {
			return e, true
		}
	}
	for _, e := range enabled {
		if e.Proc == ch.Proc {
			return e, true
		}
	}
	return sim.Choice{}, false
}

// appendProcOnce appends ch unless sel already selects its processor.
func appendProcOnce(sel []sim.Choice, ch sim.Choice) []sim.Choice {
	for _, s := range sel {
		if s.Proc == ch.Proc {
			return sel
		}
	}
	return append(sel, ch)
}
