package hunt_test

import (
	"strings"
	"testing"

	"snappif/internal/core"
	"snappif/internal/graph"
	"snappif/internal/hunt"
	"snappif/internal/sim"
)

// TestScheduleScenarioReplaysExactly: the explorer's export hook produces a
// scenario whose replay executes the recorded schedule bit for bit — the
// fairness bound is pinned above the schedule length so weak-fairness
// forcing can never add a selection.
func TestScheduleScenarioReplaysExactly(t *testing.T) {
	g, err := graph.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	schedule := [][]sim.Choice{
		{{Proc: 0, Action: core.ActionB}},
		{{Proc: 1, Action: core.ActionB}},
		{{Proc: 2, Action: core.ActionB}},
	}
	sc := hunt.NewScheduleScenario("export-roundtrip", g, 0, sim.NewConfiguration(g, pr), schedule, "")
	if sc.FairnessAge != len(schedule)+2 {
		t.Fatalf("FairnessAge = %d, want %d", sc.FairnessAge, len(schedule)+2)
	}
	data, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := hunt.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc2.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("clean schedule violated: %v", rep.Violations)
	}
	if got := hunt.ToSchedule(rep.Executed); len(got) != len(schedule) {
		t.Fatalf("executed %d steps, want %d", len(got), len(schedule))
	}
	for i, step := range hunt.ToSchedule(rep.Executed) {
		if len(step) != 1 || step[0] != [2]int{schedule[i][0].Proc, schedule[i][0].Action} {
			t.Fatalf("step %d executed %v, want %v", i, step, schedule[i])
		}
	}
}

// TestSeedScenarioRuns: the frontier-seed export produces a schedule-free
// scenario that runs under its named daemon.
func TestSeedScenarioRuns(t *testing.T) {
	g, err := graph.Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	sc := hunt.NewSeedScenario("seed", g, 0, sim.NewConfiguration(g, pr), "central-random", 15, "")
	if sc.MaxSteps != 15 || sc.Daemon != "central-random" || len(sc.Schedule) != 0 {
		t.Fatalf("unexpected scenario shape: %+v", sc)
	}
	rep, err := sc.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("clean seed violated: %v", rep.Violations)
	}
}

// TestHostileScenarioValidation pins the decode-time hardening: claimed
// node counts beyond connectivity, and snapshot parent pointers outside
// [0,n), are rejected with errors instead of panicking or allocating.
func TestHostileScenarioValidation(t *testing.T) {
	huge := `{"v":1,"topology":{"name":"x","n":1000000000000000000,"edges":[]},"root":0,"seed":0}`
	sc, err := hunt.Unmarshal([]byte(huge))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Graph(); err == nil || !strings.Contains(err.Error(), "cannot be connected") {
		t.Fatalf("hostile N: err = %v", err)
	}

	badPar := `{"v":1,"topology":{"name":"x","n":3,"edges":[[0,1],[1,2]]},"root":0,"seed":0,` +
		`"init":{"t":"snapshot","pif":"CCC","par":[-1,9,1],"l":[0,1,2],"count":[1,1,1],` +
		`"fok":[false,false,false],"msg":["0","0","0"],"val":[0,0,0],"agg":[0,0,0]}}`
	sc, err = hunt.Unmarshal([]byte(badPar))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(nil, nil); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("hostile parent: err = %v", err)
	}
}
