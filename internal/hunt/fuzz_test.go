package hunt_test

import (
	"testing"

	"snappif/internal/core"
	"snappif/internal/graph"
	"snappif/internal/hunt"
	"snappif/internal/sim"
)

// FuzzScenarioJSON feeds hostile bytes to the scenario decoder and runner:
// malformed or truncated JSON must produce an error, and any scenario that
// does decode must run to a verdict or an error — never panic, never
// half-apply a snapshot (obs.RestoreSnapshot validates every array length
// before writing anything). The committed corpus under
// testdata/fuzz/FuzzScenarioJSON pins the hostile shapes that previously
// reached panics: snapshot parent pointers outside [0,n), truncated
// snapshot arrays, and astronomically large claimed node counts.
func FuzzScenarioJSON(f *testing.F) {
	g, err := graph.Line(3)
	if err != nil {
		f.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	sc := hunt.NewSeedScenario("fuzz-seed", g, 0, sim.NewConfiguration(g, pr), "central-random", 10, "")
	if data, err := sc.Marshal(); err == nil {
		f.Add(data)
	}
	schedSc := hunt.NewScheduleScenario("fuzz-sched", g, 0, sim.NewConfiguration(g, pr),
		[][]sim.Choice{{{Proc: 0, Action: core.ActionB}}}, "")
	if data, err := schedSc.Marshal(); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"v":1,"topology":{"name":"x","n":3,`))
	f.Add([]byte(`{"v":1,"topology":{"name":"x","n":1000000000000000000,"edges":[]},"root":0,"seed":0}`))
	f.Add([]byte(`{"v":1,"topology":{"name":"x","n":3,"edges":[[0,1],[1,2]]},"root":0,"seed":0,` +
		`"init":{"t":"snapshot","pif":"BBB","par":[-1,9,1],"l":[0,1,2],"count":[1,1,1],` +
		`"fok":[false,false,false],"msg":["0","0","0"],"val":[0,0,0],"agg":[0,0,0]}}`))
	f.Add([]byte(`{"v":1,"topology":{"name":"x","n":3,"edges":[[0,1],[1,2]]},"root":0,"seed":0,` +
		`"init":{"t":"snapshot","pif":"BBB","par":[-1,0],"l":[0],"count":[1],"fok":[false],` +
		`"msg":["0"],"val":[0],"agg":[0]}}`))
	f.Add([]byte(`{"v":1,"topology":{"name":"x","n":2,"edges":[[0,1]]},"root":0,"seed":0,` +
		`"schedule":[[[7,99]],[[0,0]]],"daemon":"no-such-daemon"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := hunt.Unmarshal(data)
		if err != nil {
			return
		}
		// Clamp cost, not validity: hostile-but-decodable scenarios must
		// reach a verdict or an error without panicking; only runs that
		// would merely be slow are skipped or shortened.
		if sc.Topology.N > 10 || len(sc.Topology.Edges) > 24 || len(sc.Schedule) > 64 {
			return
		}
		if sc.Lmax > 64 || sc.NPrime > 64 || sc.Lmax < 0 || sc.NPrime < 0 {
			return
		}
		if sc.MaxSteps <= 0 || sc.MaxSteps > 40 {
			sc.MaxSteps = 20
		}
		_, _ = sc.Run(nil, nil)
	})
}
