package hunt_test

import (
	"bytes"
	"testing"

	"snappif/internal/check"
	"snappif/internal/graph"
	"snappif/internal/hunt"
)

func grid2x4(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.Grid(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func baseScenario(t testing.TB) *hunt.Scenario {
	return &hunt.Scenario{
		Topology: hunt.TopologyOf(grid2x4(t)),
		Root:     0,
		Seed:     1,
	}
}

// TestScenarioRoundTrip checks the JSON codec is lossless: marshal →
// unmarshal → marshal reproduces the same bytes, and the decoded scenario
// produces a byte-identical obs trace.
func TestScenarioRoundTrip(t *testing.T) {
	sc := baseScenario(t)
	sc.Name = "round-trip"
	sc.Fault = "uniform-random"
	sc.Daemon = "adversarial-lifo"
	sc.MaxSteps = 400

	data, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := hunt.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := dec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("marshal not stable across a decode round trip:\n%s\nvs\n%s", data, data2)
	}

	var tr1, tr2 bytes.Buffer
	if _, err := sc.Trace(&tr1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Trace(&tr2, nil); err != nil {
		t.Fatal(err)
	}
	if tr1.Len() == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(tr1.Bytes(), tr2.Bytes()) {
		t.Fatal("decoded scenario produced a different trace than the original")
	}
}

// TestNormalizedReplayBitIdentical checks the core replay contract: a
// normalized scenario (explicit snapshot + executed schedule) traces to the
// same bytes on every run, and its run reproduces the original violation.
func TestNormalizedReplayBitIdentical(t *testing.T) {
	sc := baseScenario(t)
	sc.Fault = "uniform-random"
	sc.Daemon = "dist-random"

	norm, rep, err := hunt.Normalize(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if norm.Init == nil || len(norm.Schedule) == 0 {
		t.Fatalf("normalize produced no snapshot/schedule: init=%v steps=%d", norm.Init, len(norm.Schedule))
	}
	rep2, err := norm.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Executed) != len(norm.Schedule) {
		t.Fatalf("replay executed %d steps, schedule has %d", len(rep2.Executed), len(norm.Schedule))
	}
	if got, want := hunt.ToSchedule(rep2.Executed), norm.Schedule; !schedulesEqual(got, want) {
		t.Fatal("replay diverged from the normalized schedule")
	}
	if len(rep.Violations) != len(rep2.Violations) {
		t.Fatalf("violations changed across normalization: %d vs %d", len(rep.Violations), len(rep2.Violations))
	}

	var b1, b2 bytes.Buffer
	if _, err := norm.Trace(&b1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := norm.Trace(&b2, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("normalized replay is not bit-identical across runs")
	}
}

func schedulesEqual(a, b [][][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestGreedyDaemonDeterministic checks the guided-search daemon is a pure
// function of the scenario: two runs execute the same schedule.
func TestGreedyDaemonDeterministic(t *testing.T) {
	for _, obj := range hunt.Objectives() {
		obj := obj
		t.Run(obj.Name, func(t *testing.T) {
			sc := baseScenario(t)
			sc.Fault = "phantom-tree"
			sc.Daemon = "greedy-" + obj.Name
			sc.MaxSteps = 120

			r1, err := sc.Run(nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := sc.Run(nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !schedulesEqual(hunt.ToSchedule(r1.Executed), hunt.ToSchedule(r2.Executed)) {
				t.Fatal("greedy daemon executed different schedules across identical runs")
			}
			if r1.Result.Steps == 0 {
				t.Fatal("greedy run made no steps")
			}
		})
	}
}

// TestBeamDeterministic checks beam search returns the same schedule and
// score on repeated invocations.
func TestBeamDeterministic(t *testing.T) {
	sc := baseScenario(t)
	sc.Fault = "max-levels"
	opt := hunt.BeamOptions{Width: 3, Depth: 10, Branch: 3}
	s1, sc1, err := hunt.Beam(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	s2, sc2, err := hunt.Beam(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sc1 != sc2 {
		t.Fatalf("beam scores differ: %v vs %v", sc1, sc2)
	}
	if !schedulesEqual(hunt.ToSchedule(s1), hunt.ToSchedule(s2)) {
		t.Fatal("beam schedules differ across identical searches")
	}
	if len(s1) == 0 {
		t.Fatal("beam found no schedule")
	}
}

// TestHuntCleanProtocol checks the hunter reports zero violations on the
// unmodified protocol, across clean and corrupted starts — the CI smoke
// contract.
func TestHuntCleanProtocol(t *testing.T) {
	for _, fault := range []string{"", "uniform-random", "phantom-tree"} {
		name := fault
		if name == "" {
			name = "clean"
		}
		t.Run(name, func(t *testing.T) {
			sc := baseScenario(t)
			sc.Fault = fault
			sum, err := hunt.Hunt(sc, hunt.Options{Trials: 4})
			if err != nil {
				t.Fatal(err)
			}
			if len(sum.Findings) != 0 {
				t.Fatalf("hunt reported %d findings on the unmodified protocol; first: %+v",
					len(sum.Findings), sum.Findings[0].Violation)
			}
			if sum.Runs != 4+len(hunt.Objectives()) {
				t.Fatalf("hunt ran %d probes, want %d", sum.Runs, 4+len(hunt.Objectives()))
			}
		})
	}
}

// TestHuntFindsAndShrinksPlantedBug is the end-to-end pipeline test: the
// hunter must find the planted level-overflow bug, shrink the
// counterexample to at most 5 schedule steps, and produce bit-identical
// deterministic replay artifacts across independent hunts.
func TestHuntFindsAndShrinksPlantedBug(t *testing.T) {
	runHunt := func() *hunt.Summary {
		sc := baseScenario(t)
		sc.Plant = "level-overflow"
		sum, err := hunt.Hunt(sc, hunt.Options{Trials: 4, Shrink: true})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	sum := runHunt()
	if len(sum.Findings) == 0 {
		t.Fatal("hunt failed to find the planted level-overflow bug")
	}
	f := sum.Findings[0]
	if f.Violation.Check != "domains" {
		t.Fatalf("planted bug tripped check %q, want domains", f.Violation.Check)
	}
	if f.Shrunk == nil || f.Stats == nil {
		t.Fatal("finding was not shrunk")
	}
	if got := len(f.Shrunk.Schedule); got > 5 {
		t.Fatalf("shrunk schedule has %d steps, want ≤ 5", got)
	}
	if f.Shrunk.Topology.N >= f.Scenario.Topology.N {
		t.Fatalf("topology did not shrink: %d -> %d processors",
			f.Scenario.Topology.N, f.Shrunk.Topology.N)
	}

	// The shrunk artifact still fails with the same check, deterministically.
	rep, err := f.Shrunk.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 || rep.Violations[0].Check != "domains" {
		t.Fatalf("shrunk scenario does not reproduce the domains violation: %+v", rep.Violations)
	}

	// Determinism across independent hunts: same shrunk artifact bytes.
	sum2 := runHunt()
	if len(sum2.Findings) == 0 {
		t.Fatal("second hunt found nothing")
	}
	b1, err := f.Shrunk.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := sum2.Findings[0].Shrunk.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("shrunk artifacts differ across hunts:\n%s\nvs\n%s", b1, b2)
	}

	// And the shrunk trace is bit-identical across replays.
	var tr1, tr2 bytes.Buffer
	if _, err := f.Shrunk.Trace(&tr1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Shrunk.Trace(&tr2, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tr1.Bytes(), tr2.Bytes()) {
		t.Fatal("shrunk scenario trace is not bit-identical across replays")
	}
}

// TestShrinkPreservesCheck checks the shrinker rejects non-failing inputs
// and records sensible stats on failing ones.
func TestShrinkPreservesCheck(t *testing.T) {
	sc := baseScenario(t)
	if _, _, err := hunt.Shrink(sc, hunt.ShrinkOptions{}); err == nil {
		t.Fatal("shrinking a passing scenario should error")
	}

	sc.Plant = "level-overflow"
	sc.Daemon = "greedy-violations"
	shrunk, stats, err := hunt.Shrink(sc, hunt.ShrinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Check != "domains" {
		t.Fatalf("stats.Check = %q, want domains", stats.Check)
	}
	if stats.ToSteps > stats.FromSteps || stats.ToN > stats.FromN {
		t.Fatalf("shrink grew the scenario: %+v", stats)
	}
	if shrunk.Fault != "" || shrunk.Daemon != "" || shrunk.Init == nil {
		t.Fatalf("shrunk scenario is not normalized: fault=%q daemon=%q init=%v",
			shrunk.Fault, shrunk.Daemon, shrunk.Init != nil)
	}
}

// TestObjectivesResolve checks the registry lookups.
func TestObjectivesResolve(t *testing.T) {
	for _, o := range hunt.Objectives() {
		got, ok := hunt.ObjectiveByName(o.Name)
		if !ok || got.Name != o.Name {
			t.Fatalf("ObjectiveByName(%q) failed", o.Name)
		}
	}
	if _, ok := hunt.ObjectiveByName("nope"); ok {
		t.Fatal("ObjectiveByName accepted an unknown name")
	}
	for _, p := range hunt.Plants() {
		got, ok := hunt.PlantByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Fatalf("PlantByName(%q) failed", p.Name)
		}
	}
	checks := check.StandardChecks()
	if len(checks) == 0 {
		t.Fatal("no standard checks")
	}
}
