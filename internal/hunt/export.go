package hunt

import (
	"snappif/internal/graph"
	"snappif/internal/obs"
	"snappif/internal/sim"
)

// NewScheduleScenario builds a fully explicit, replayable scenario from a
// concrete initial configuration and a schedule: the export hook the
// exhaustive explorer (internal/explore) uses to turn a violating path into
// a pifhunt artifact. The configuration must hold *core.State boxes.
//
// FairnessAge is pinned above the schedule length so the runner's
// weak-fairness forcing can never add a selection the script does not
// contain: the replay executes exactly the recorded steps, bit for bit.
func NewScheduleScenario(name string, g *graph.Graph, root int, init *sim.Configuration, schedule [][]sim.Choice, plant string) *Scenario {
	snap := obs.CaptureSnapshot(init)
	return &Scenario{
		V:           SchemaVersion,
		Name:        name,
		Topology:    TopologyOf(g),
		Root:        root,
		Init:        &snap,
		Schedule:    ToSchedule(schedule),
		FairnessAge: len(schedule) + 2,
		Plant:       plant,
	}
}

// NewSeedScenario builds a schedule-free scenario from a concrete
// configuration: the explorer's export format for frontier states at the
// depth horizon, which pifhunt can then take over as search seeds. The
// configuration must hold *core.State boxes.
func NewSeedScenario(name string, g *graph.Graph, root int, init *sim.Configuration, daemon string, maxSteps int, plant string) *Scenario {
	snap := obs.CaptureSnapshot(init)
	return &Scenario{
		V:        SchemaVersion,
		Name:     name,
		Topology: TopologyOf(g),
		Root:     root,
		Init:     &snap,
		Daemon:   daemon,
		MaxSteps: maxSteps,
		Plant:    plant,
	}
}
