package hunt

import (
	"fmt"

	"snappif/internal/check"
)

// Options configures a Hunt.
type Options struct {
	// Trials is the number of random-daemon probes (0 = 16).
	Trials int
	// Objectives are the guided-search objectives to run, one greedy daemon
	// each (nil = Objectives()).
	Objectives []Objective
	// Seed is the base seed; random trial t runs at Seed+t, guided runs at
	// Seed (0 = 1).
	Seed int64
	// MaxSteps bounds each run (0 = the scenario default, 200·N).
	MaxSteps int
	// Checks are the hunted invariants (nil = check.StandardChecks).
	Checks []check.Check
	// Shrink minimizes every finding before reporting it.
	Shrink bool
	// ShrinkRuns bounds each shrink's candidate executions (0 = 4000).
	ShrinkRuns int
}

// Finding is one discovered invariant violation, packaged for replay: the
// normalized scenario reproduces it bit-for-bit with no daemon and no
// injector, just an explicit snapshot and schedule.
type Finding struct {
	// Daemon and Seed identify the run that found the violation.
	Daemon string
	Seed   int64
	// Violation is the first violation of that run.
	Violation check.Violation
	// Scenario is the normalized failing scenario.
	Scenario *Scenario
	// Shrunk is the minimized scenario (nil unless Options.Shrink).
	Shrunk *Scenario
	// Stats describes the shrink (nil unless Options.Shrink).
	Stats *ShrinkStats
}

// Summary is the outcome of a Hunt.
type Summary struct {
	// Runs counts top-level probe runs (not shrink candidates).
	Runs int
	// WorstRounds is the highest round count any probe consumed, and
	// WorstDaemon the daemon that produced it.
	WorstRounds int
	WorstDaemon string
	// Findings lists every distinct probe that violated an invariant.
	Findings []Finding
}

// Hunt probes the scenario for invariant violations and worst-case round
// consumption: Trials runs under the distributed random daemon at
// incrementing seeds, then one greedy-search run per objective. Every
// violating probe becomes a normalized (and optionally shrunk) Finding.
// The whole hunt is deterministic in (base, opt).
func Hunt(base *Scenario, opt Options) (*Summary, error) {
	trials := opt.Trials
	if trials <= 0 {
		trials = 16
	}
	objectives := opt.Objectives
	if objectives == nil {
		objectives = Objectives()
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	checks := opt.Checks
	if checks == nil {
		checks = check.StandardChecks()
	}

	sum := &Summary{}
	probe := func(daemon string, probeSeed int64) error {
		sc := base.Clone()
		sc.Daemon = daemon
		sc.Seed = probeSeed
		if opt.MaxSteps > 0 {
			sc.MaxSteps = opt.MaxSteps
		}
		sum.Runs++
		rep, err := sc.Run(checks, nil)
		if err != nil {
			return fmt.Errorf("hunt: probe %s/seed=%d: %w", daemon, probeSeed, err)
		}
		if rep.Result.Rounds > sum.WorstRounds || sum.WorstDaemon == "" {
			sum.WorstRounds = rep.Result.Rounds
			sum.WorstDaemon = daemon
		}
		if len(rep.Violations) == 0 {
			return nil
		}
		f := Finding{Daemon: daemon, Seed: probeSeed, Violation: rep.Violations[0]}
		norm, _, err := Normalize(sc, checks)
		if err != nil {
			return fmt.Errorf("hunt: normalize %s/seed=%d: %w", daemon, probeSeed, err)
		}
		f.Scenario = norm
		if opt.Shrink {
			shrunk, stats, err := Shrink(norm, ShrinkOptions{MaxRuns: opt.ShrinkRuns, Checks: checks})
			if err != nil {
				return fmt.Errorf("hunt: shrink %s/seed=%d: %w", daemon, probeSeed, err)
			}
			f.Shrunk, f.Stats = shrunk, stats
		}
		sum.Findings = append(sum.Findings, f)
		return nil
	}

	for t := 0; t < trials; t++ {
		if err := probe("dist-random", seed+int64(t)); err != nil {
			return nil, err
		}
	}
	for _, obj := range objectives {
		if err := probe("greedy-"+obj.Name, seed); err != nil {
			return nil, err
		}
	}
	return sum, nil
}
