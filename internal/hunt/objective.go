package hunt

import (
	"snappif/internal/check"
	"snappif/internal/core"
	"snappif/internal/sim"
)

// Eval is what an Objective scores: the configuration a rollout reached,
// the protocol it ran under, and the rollout's cost counters.
type Eval struct {
	// Config is the configuration at the evaluation point.
	Config *sim.Configuration
	// Proto is the core protocol (checks and structure predicates evaluate
	// against it, planted or not).
	Proto *core.Protocol
	// Steps, Moves, Rounds are the rollout's counters.
	Steps, Moves, Rounds int
	// Terminal reports whether the rollout reached a terminal
	// configuration before its horizon.
	Terminal bool
	// Violations counts invariant violations the rollout monitor recorded
	// (0 when the evaluator attached no checks).
	Violations int
}

// Objective scores configurations for the search adversary: higher is
// "worse" (more adversarial). Scores must be a pure function of the Eval —
// the search layers rely on it for determinism.
type Objective struct {
	// Name identifies the objective ("rounds", "abnormal", ...).
	Name string
	// Score computes the badness of an evaluation point.
	Score func(ev Eval) float64
}

// Rounds rewards executions that consume rounds: the direct adversary for
// the round bounds of Theorems 1–4. A rollout still running at its horizon
// outranks one that terminated at the same count.
func Rounds() Objective {
	return Objective{Name: "rounds", Score: func(ev Eval) float64 {
		s := float64(ev.Rounds)
		if !ev.Terminal {
			s += 0.5
		}
		return s
	}}
}

// Abnormal rewards configurations with many abnormal processors — the
// error-correction workload of Section 4.3; more abnormal trees means more
// correction waves before the next guaranteed-correct cycle.
func Abnormal() Objective {
	return Objective{Name: "abnormal", Score: func(ev Eval) float64 {
		return float64(len(check.Abnormal(ev.Config, ev.Proto)))
	}}
}

// MaxLevel rewards deep levels: pushing some L toward Lmax stresses the
// level-based correction machinery (Pre_Potential requires L < Lmax).
func MaxLevel() Objective {
	return Objective{Name: "maxlevel", Score: func(ev Eval) float64 {
		m := 0
		for p := 0; p < ev.Config.N(); p++ {
			if l := core.At(ev.Config, p).L; l > m {
				m = l
			}
		}
		return float64(m)
	}}
}

// Violations rewards rollouts that break an invariant outright, with
// rounds as a tie-break; the guided way to hunt for violations (the
// evaluator must attach checks for the count to be non-zero).
func Violations() Objective {
	return Objective{Name: "violations", Score: func(ev Eval) float64 {
		return 1000*float64(ev.Violations) + float64(ev.Rounds)
	}}
}

// Objectives returns every built-in objective in presentation order.
func Objectives() []Objective {
	return []Objective{Rounds(), Abnormal(), MaxLevel(), Violations()}
}

// ObjectiveByName resolves a built-in objective.
func ObjectiveByName(name string) (Objective, bool) {
	for _, o := range Objectives() {
		if o.Name == name {
			return o, true
		}
	}
	return Objective{}, false
}
