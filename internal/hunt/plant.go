package hunt

import (
	"snappif/internal/core"
	"snappif/internal/sim"
)

// Plant is a deliberate, test-only protocol mutation: a named wrapper that
// injects a specific invariant bug into the PIF protocol. Plants exist so
// the hunter's whole pipeline — find, normalize, shrink, replay — can be
// exercised end to end against a protocol that is actually broken; they
// are never active unless a scenario names one explicitly.
type Plant struct {
	// Name identifies the plant in scenarios ("level-overflow").
	Name string
	// Doc describes the injected bug.
	Doc string
	// Wrap returns the mutated protocol over pr.
	Wrap func(pr *core.Protocol) sim.Protocol
}

// Plants returns every registered plant.
func Plants() []Plant {
	return []Plant{LevelOverflow()}
}

// PlantByName resolves a registered plant.
func PlantByName(name string) (Plant, bool) {
	for _, pl := range Plants() {
		if pl.Name == name {
			return pl, true
		}
	}
	return Plant{}, false
}

// LevelOverflow is the canonical planted bug: a non-root B-action that
// computes a level of 2 or more writes L = Lmax+1 instead — one field, one
// action, immediately violating the domains invariant (L ∈ [1,Lmax]). From
// a clean start it triggers on the third step of any topology of depth ≥ 2
// (root B, child B at L=1, grandchild B at L=2), so a shrunk
// counterexample is tiny and structurally obvious.
func LevelOverflow() Plant {
	return Plant{
		Name: "level-overflow",
		Doc:  "non-root B-action at level ≥ 2 writes L = Lmax+1, violating the domains invariant",
		Wrap: func(pr *core.Protocol) sim.Protocol { return &levelOverflow{Protocol: pr} },
	}
}

// levelOverflow wraps the PIF protocol, corrupting the level written by
// deep B-actions. Guards are inherited untouched (so the model-conformance
// analyzers' purity and locality facts still hold); only the committed
// state of the acting processor is altered, through the same return-value
// or ApplyInto-dst paths the model allows.
type levelOverflow struct {
	*core.Protocol
}

var (
	_ sim.Protocol        = (*levelOverflow)(nil)
	_ sim.InPlaceProtocol = (*levelOverflow)(nil)
)

// Name implements sim.Protocol.
func (pl *levelOverflow) Name() string { return pl.Protocol.Name() + "+level-overflow" }

// Apply implements sim.Protocol.
func (pl *levelOverflow) Apply(c *sim.Configuration, p, a int) sim.State {
	s := *pl.Protocol.Apply(c, p, a).(*core.State)
	if pl.triggers(p, a, s.L) {
		s.L = pl.Lmax + 1
	}
	return &s
}

// ApplyInto implements sim.InPlaceProtocol.
func (pl *levelOverflow) ApplyInto(c *sim.Configuration, p, a int, dst sim.State) {
	pl.Protocol.ApplyInto(c, p, a, dst)
	if pl.triggers(p, a, dst.(*core.State).L) {
		dst.(*core.State).L = pl.Lmax + 1
	}
}

// triggers reports whether the bug fires: a non-root B-action whose
// computed level is at least 2.
func (pl *levelOverflow) triggers(p, a, l int) bool {
	return a == core.ActionB && p != pl.Root && l >= 2
}
