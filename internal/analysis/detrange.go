package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"snappif/internal/analysis/dataflow"
)

// detrangePackages are the deterministic-engine packages (module-relative
// import paths): everything whose output feeds the byte-identical
// serial/parallel and optimized/reference determinism oracles. A package
// outside the list can opt in with a `//snapvet:deterministic` file
// comment (the analyzer's own testdata does).
var detrangePackages = map[string]bool{
	"internal/sim":     true,
	"internal/core":    true,
	"internal/event":   true,
	"internal/exp":     true,
	"internal/explore": true,
	"internal/flat":    true,
	"internal/graph":   true,
	"internal/trace":   true,
	"internal/obs":     true,
	"internal/hunt":    true,
	"internal/service": true,
}

// detrange enforces the engine's determinism invariant at its three
// classic leak points: map iteration order, wall-clock reads, and the
// process-global math/rand source. Same seed, same schedule, same bytes —
// the serial/parallel executor equivalence and the trace replay oracle
// both depend on it.
var detrange = &Analyzer{
	Name: "detrange",
	Doc:  "no map range, clock reads, or global randomness in the deterministic engine packages",
	Run:  runDetrange,
}

// detrangeTarget reports whether the module-relative package path rel is
// one of the deterministic engine packages or nested inside one. The
// cmd/ tools are included: their artifact output feeds diffable logs, so
// any intentional wall-clock read there carries an //snapvet:ok note.
func detrangeTarget(rel string) bool {
	if detrangePackages[rel] {
		return true
	}
	if strings.HasPrefix(rel, "cmd/") {
		return true
	}
	for dir := range detrangePackages {
		if strings.HasPrefix(rel, dir+"/") {
			return true
		}
	}
	return false
}

func runDetrange(pass *Pass) {
	ann := pass.ann
	for _, pkg := range pass.Prog.Packages {
		if !detrangeTarget(pass.Prog.RelPath(pkg.Path)) && !ann.deterministic[pkg.Path] {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.RangeStmt:
					t := pkg.Info.TypeOf(x.X)
					if t == nil {
						return true
					}
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Report(x.Pos(), "range over a map iterates in nondeterministic order inside a deterministic engine package; iterate a sorted key slice or annotate //snapvet:ok <reason>")
					}
				case *ast.CallExpr:
					callee := dataflow.CalleeOf(pkg.Info, x)
					if callee == nil {
						return true
					}
					switch dataflow.PkgPath(callee) {
					case "time":
						switch callee.Name() {
						case "Now", "Since", "Until":
							pass.Report(x.Pos(), "time.%s reads the wall clock inside a deterministic engine package; derive timing outside the engine or annotate //snapvet:ok <reason>", callee.Name())
						}
					case "math/rand", "math/rand/v2":
						if dataflow.IsGlobalRand(callee) {
							pass.Report(x.Pos(), "package-level %s.%s draws from the process-global source; thread a seeded *rand.Rand instead", dataflow.PkgPath(callee), callee.Name())
						}
					}
				}
				return true
			})
		}
	}
}
