package dataflow

import (
	"go/ast"
	"go/types"
)

// This file computes per-function neighbor-read summaries: for every
// processor-index parameter, how many neighbor hops away from it the
// function reads processor state. The lattice is the hop count itself,
// capped at MaxHop and widened to Unbounded: a read whose index cannot be
// derived from a parameter through neighbor iteration (an arbitrary
// integer, a protocol-owned lookup table) is Unbounded, because the guard
// cache cannot bound its dirty region.
//
// Derivations recognized, matching the code shapes the engines use:
//
//	q := <param>                     hop 0
//	for _, q := range g.Neighbors(p) hop(p) + 1
//	nb := c.neighbors(p); nb[i]      hop(p) + 1
//	par := c.par[p] / st(c,p).Par    hop(p) + 1 (a parent is a neighbor)
//	helper(c, q) with a summary      hop(q) + callee's per-param hop
//
// The walk is flow-insensitive over source order (last assignment wins),
// which is exact for the straight-line guard cascades this repository
// writes and safely over-approximates branches (max over both arms would
// only ever lower the derived radius — not taken).

// derivKind classifies what a tracked local holds.
type derivKind int

const (
	derivNone  derivKind = iota
	derivProc            // a processor index, hop hops from param
	derivState           // a processor-state value read hop hops from param
	derivNbrs            // the neighbor list of a processor hop-1 hops from param
)

type deriv struct {
	kind  derivKind
	param int
	hop   int
}

// hopWalk computes fi's Hops given the engine's current callee summaries
// (re-run per fixpoint iteration).
func hopWalk(e *Engine, fi *FuncInfo) *Hops {
	w := &hopWalker{
		e:    e,
		fi:   fi,
		info: fi.Pkg.Info,
		env:  make(map[types.Object]deriv),
		out:  &Hops{ByParam: map[int]int{}, RetState: map[int]int{}, RetNeighbor: map[int]int{}},
	}
	// Seed: every integer-typed parameter is a candidate processor index
	// at hop 0 from itself.
	if params := fi.Decl.Type.Params; params != nil {
		i := 0
		for _, field := range params.List {
			for _, name := range field.Names {
				if obj := w.info.Defs[name]; obj != nil && isIntegral(obj.Type()) {
					w.env[obj] = deriv{kind: derivProc, param: i, hop: 0}
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	w.walk(fi.Decl.Body)
	// Expression evaluation can visit the same site from several
	// contexts (assignment rhs then the generic walk); keep one entry
	// per position.
	seen := make(map[int]bool, len(w.out.UnboundedSites))
	dedup := w.out.UnboundedSites[:0]
	for _, pos := range w.out.UnboundedSites {
		if !seen[int(pos)] {
			seen[int(pos)] = true
			dedup = append(dedup, pos)
		}
	}
	w.out.UnboundedSites = dedup
	return w.out
}

type hopWalker struct {
	e    *Engine
	fi   *FuncInfo
	info *types.Info
	env  map[types.Object]deriv
	out  *Hops
}

func isIntegral(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func (w *hopWalker) read(param, hop int) {
	if hop > MaxHop {
		hop = Unbounded
	}
	if cur, ok := w.out.ByParam[param]; !ok || hop > cur {
		w.out.ByParam[param] = hop
	}
}

// addHop saturates hop addition at Unbounded.
func addHop(h, d int) int {
	if h >= Unbounded || h+d > MaxHop {
		return Unbounded
	}
	return h + d
}

// walk processes nodes in pre-order: assignments update the environment
// before later siblings are visited, and every state read is recorded at
// the point it appears.
func (w *hopWalker) walk(node ast.Node) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			w.assign(x)
		case *ast.RangeStmt:
			w.rangeStmt(x)
		case *ast.IndexExpr:
			// Every state-indexing expression is a read; evalProcIndexed
			// records it (idempotently — ByParam takes the max).
			if _, _, ok := w.e.model.StateIndex(w.info, x); ok {
				w.evalProcIndexed(x)
			}
		case *ast.CallExpr:
			w.callSite(x)
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if d := w.evalState(res); d.kind == derivState {
					if cur, ok := w.out.RetState[d.param]; !ok || d.hop > cur {
						w.out.RetState[d.param] = d.hop
					}
				} else if d := w.evalProc(res); d.kind == derivProc && d.hop > 0 {
					if cur, ok := w.out.RetNeighbor[d.param]; !ok || d.hop > cur {
						w.out.RetNeighbor[d.param] = d.hop
					}
				}
			}
		}
		return true
	})
}

// assign tracks single-target bindings; everything else degrades to
// untracked (derivNone), which is conservative.
func (w *hopWalker) assign(as *ast.AssignStmt) {
	bind := func(lhs ast.Expr, d deriv) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		var obj types.Object
		if o := w.info.Defs[id]; o != nil {
			obj = o
		} else if o := w.info.Uses[id]; o != nil {
			obj = o
		}
		if obj != nil {
			w.env[obj] = d
		}
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			bind(as.Lhs[i], w.evalAny(as.Rhs[i]))
		}
		return
	}
	// s, ok := expr.(T) — the comma-ok form binds the asserted value to
	// the first target.
	if len(as.Lhs) == 2 && len(as.Rhs) == 1 {
		bind(as.Lhs[0], w.evalAny(as.Rhs[0]))
		bind(as.Lhs[1], deriv{})
	}
}

// rangeStmt handles neighbor iteration (hop+1) and whole-column scans
// (unbounded).
func (w *hopWalker) rangeStmt(r *ast.RangeStmt) {
	bind := func(lhs ast.Expr, d deriv) {
		if lhs == nil {
			return
		}
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		var obj types.Object
		if o := w.info.Defs[id]; o != nil {
			obj = o
		} else if o := w.info.Uses[id]; o != nil {
			obj = o
		}
		if obj != nil {
			w.env[obj] = d
		}
	}
	if d := w.evalNbrs(r.X); d.kind == derivNbrs {
		// for _, q := range Neighbors(p): the value is a processor one
		// hop past p; the key is a position within the list, not a
		// processor.
		bind(r.Value, deriv{kind: derivProc, param: d.param, hop: d.hop})
		bind(r.Key, deriv{})
		return
	}
	if w.e.model.IsStateColumn(w.info, r.X) {
		// Ranging over an entire state column reads state at every
		// processor: unbounded by construction.
		w.out.UnboundedSites = append(w.out.UnboundedSites, r.X.Pos())
	}
	bind(r.Key, deriv{})
	bind(r.Value, deriv{})
}

// evalProcIndexed evaluates a state-indexing expression: records the read
// and, for parent-pointer columns, returns the loaded value's derivation
// (one hop further).
func (w *hopWalker) evalProcIndexed(ix *ast.IndexExpr) deriv {
	idx, parent, ok := w.e.model.StateIndex(w.info, ix)
	if !ok {
		return deriv{}
	}
	d := w.evalProc(idx)
	if d.kind != derivProc {
		w.out.UnboundedSites = append(w.out.UnboundedSites, ix.Pos())
		return deriv{}
	}
	w.read(d.param, d.hop)
	if parent {
		return deriv{kind: derivProc, param: d.param, hop: addHop(d.hop, 1)}
	}
	return deriv{kind: derivState, param: d.param, hop: d.hop}
}

// callSite composes callee hop summaries into this function's, for calls
// used as statements or in untracked positions (calls in tracked
// positions go through evalProc/evalState, which also land here).
func (w *hopWalker) callSite(call *ast.CallExpr) {
	callee := CalleeOf(w.info, call)
	if callee == nil {
		return
	}
	hg := w.e.hops[callee]
	if hg == nil {
		return
	}
	for j, h := range hg.ByParam {
		arg := argAt(call, j)
		if arg == nil {
			continue
		}
		d := w.evalProc(arg)
		if d.kind == derivProc {
			w.read(d.param, addHop(d.hop, h))
		} else if isIntegral(w.info.TypeOf(arg)) {
			// The callee reads state indexed by this parameter, and the
			// argument does not derive from any of ours: unbounded.
			w.out.UnboundedSites = append(w.out.UnboundedSites, arg.Pos())
		}
	}
}

// argAt returns the j-th argument (nil when out of range).
func argAt(call *ast.CallExpr, j int) ast.Expr {
	if j < 0 || j >= len(call.Args) {
		return nil
	}
	return call.Args[j]
}

// evalAny tries processor, state, and neighbor-list derivations in turn.
func (w *hopWalker) evalAny(e ast.Expr) deriv {
	if d := w.evalProc(e); d.kind != derivNone {
		return d
	}
	if d := w.evalState(e); d.kind != derivNone {
		return d
	}
	return w.evalNbrs(e)
}

// evalProc resolves e to a processor-index derivation.
func (w *hopWalker) evalProc(e ast.Expr) deriv {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if d, ok := w.env[lookupObj(w.info, x)]; ok && d.kind == derivProc {
			return d
		}
	case *ast.CallExpr:
		// Conversions int(q), int32(q) preserve the derivation.
		if tv, ok := w.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return w.evalProc(x.Args[0])
		}
		if callee := CalleeOf(w.info, x); callee != nil {
			if hg := w.e.hops[callee]; hg != nil {
				for j, off := range hg.RetNeighbor {
					if arg := argAt(x, j); arg != nil {
						if d := w.evalProc(arg); d.kind == derivProc {
							return deriv{kind: derivProc, param: d.param, hop: addHop(d.hop, off)}
						}
					}
				}
			}
		}
	case *ast.IndexExpr:
		// Parent-pointer column read: c.par[p] is a neighbor of p.
		if _, parent, ok := w.e.model.StateIndex(w.info, x); ok && parent {
			return w.evalProcIndexed(x)
		}
		// Indexing a tracked neighbor list: nb[i] is a processor at the
		// list's hop.
		if d := w.evalNbrs(x.X); d.kind == derivNbrs {
			return deriv{kind: derivProc, param: d.param, hop: d.hop}
		}
	case *ast.SelectorExpr:
		// Parent field of a state value: st(c, p).Par is a neighbor of p.
		if w.e.model.IsParentField(w.info, x) {
			if d := w.evalState(x.X); d.kind == derivState {
				return deriv{kind: derivProc, param: d.param, hop: addHop(d.hop, 1)}
			}
		}
	}
	return deriv{}
}

// evalState resolves e to a state-value derivation.
func (w *hopWalker) evalState(e ast.Expr) deriv {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if d, ok := w.env[lookupObj(w.info, x)]; ok && d.kind == derivState {
			return d
		}
	case *ast.IndexExpr:
		if _, parent, ok := w.e.model.StateIndex(w.info, x); ok && !parent {
			return w.evalProcIndexed(x)
		}
	case *ast.TypeAssertExpr:
		return w.evalState(x.X)
	case *ast.StarExpr:
		return w.evalState(x.X)
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			return w.evalState(x.X)
		}
	case *ast.CallExpr:
		if callee := CalleeOf(w.info, x); callee != nil {
			if hg := w.e.hops[callee]; hg != nil {
				for j, off := range hg.RetState {
					if arg := argAt(x, j); arg != nil {
						if d := w.evalProc(arg); d.kind == derivProc {
							return deriv{kind: derivState, param: d.param, hop: addHop(d.hop, off)}
						}
					}
				}
			}
		}
	}
	return deriv{}
}

// evalNbrs resolves e to a neighbor-list derivation: Neighbors(p) or a
// variable bound to one.
func (w *hopWalker) evalNbrs(e ast.Expr) deriv {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if d, ok := w.env[lookupObj(w.info, x)]; ok && d.kind == derivNbrs {
			return d
		}
	case *ast.CallExpr:
		callee := CalleeOf(w.info, x)
		if callee != nil && w.e.model.IsNeighbors(callee) && len(x.Args) == 1 {
			if d := w.evalProc(x.Args[0]); d.kind == derivProc {
				return deriv{kind: derivNbrs, param: d.param, hop: addHop(d.hop, 1)}
			}
		}
	}
	return deriv{}
}

// lookupObj resolves an identifier to its object (use or def).
func lookupObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
