package dataflow

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// buildSummary runs the intraprocedural effect/alloc/call walk over one
// function body.
func buildSummary(model Model, fi *FuncInfo) *Summary {
	s := &Summary{Fn: fi.Fn}
	sc := &scanner{model: model, info: fi.Pkg.Info, fn: fi.Fn, sum: s}
	sc.scan(fi.Decl.Body)
	return s
}

// ScanNode classifies the effects and allocations of one subtree (an
// obspure disabled-path statement, a fixture body) without touching the
// engine's caches. fn labels the sites; it may be nil.
func ScanNode(model Model, pkg *Pkg, fn *types.Func, node ast.Node) (effects, allocs []Site) {
	s := &Summary{Fn: fn}
	sc := &scanner{model: model, info: pkg.Info, fn: fn, sum: s}
	sc.scan(node)
	return s.Effects, s.Allocs
}

// scanner accumulates one function's summary in source order.
type scanner struct {
	model Model
	info  *types.Info
	fn    *types.Func
	sum   *Summary

	safeAppends map[*ast.CallExpr]bool
}

func (sc *scanner) scan(node ast.Node) {
	sc.findSafeAppends(node)
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			sc.effect(Site{Kind: EffSend, Pos: x.Pos()})
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					sc.alloc(Site{Kind: EffAlloc, Alloc: AllocAddrComposite, Pos: x.Pos()})
				}
			}
		case *ast.CompositeLit:
			if t := sc.info.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					sc.alloc(Site{Kind: EffAlloc, Alloc: AllocLit, Pos: x.Pos(), Detail: "slice"})
				case *types.Map:
					sc.alloc(Site{Kind: EffAlloc, Alloc: AllocLit, Pos: x.Pos(), Detail: "map"})
				}
			}
		case *ast.FuncLit:
			// The literal itself allocates; its body is also scanned —
			// conservative, since the closure usually runs where it is made.
			sc.alloc(Site{Kind: EffAlloc, Alloc: AllocClosure, Pos: x.Pos()})
		case *ast.CallExpr:
			sc.call(x)
		default:
			writeTargets(n, func(lhs ast.Expr, pos token.Pos) {
				sc.write(lhs, pos)
			})
		}
		return true
	})
}

// findSafeAppends marks `x = append(x, ...)` / `x = append(x[:k], ...)`
// self-appends: amortized growth into a buffer reused across steps, the
// engine's sanctioned pattern.
func (sc *scanner) findSafeAppends(node ast.Node) {
	sc.safeAppends = make(map[*ast.CallExpr]bool)
	ast.Inspect(node, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || BuiltinName(sc.info, call) != "append" || len(call.Args) == 0 {
				continue
			}
			base := ast.Unparen(call.Args[0])
			if sl, ok := base.(*ast.SliceExpr); ok {
				base = sl.X
			}
			if exprString(as.Lhs[i]) == exprString(base) {
				sc.safeAppends[call] = true
			}
		}
		return true
	})
}

func (sc *scanner) effect(s Site) {
	s.Fn = sc.fn
	sc.sum.Effects = append(sc.sum.Effects, s)
}

func (sc *scanner) alloc(s Site) {
	s.Fn = sc.fn
	sc.sum.Allocs = append(sc.sum.Allocs, s)
}

// call classifies one call expression: builtin effects, allocating
// builtins, conversions, impure stdlib targets, interface-argument
// boxing, and the call-graph edge itself.
func (sc *scanner) call(call *ast.CallExpr) {
	switch b := BuiltinName(sc.info, call); b {
	case "delete":
		sc.effect(Site{Kind: EffDelete, Pos: call.Pos()})
		return
	case "close":
		sc.effect(Site{Kind: EffClose, Pos: call.Pos()})
		return
	case "print", "println":
		sc.effect(Site{Kind: EffPrint, Pos: call.Pos(), Detail: b})
		return
	case "make":
		sc.alloc(Site{Kind: EffAlloc, Alloc: AllocMake, Pos: call.Pos()})
		return
	case "new":
		sc.alloc(Site{Kind: EffAlloc, Alloc: AllocNew, Pos: call.Pos()})
		return
	case "append":
		if !sc.safeAppends[call] {
			sc.alloc(Site{Kind: EffAlloc, Alloc: AllocAppend, Pos: call.Pos()})
		}
		return
	case "panic":
		for _, arg := range call.Args {
			sc.boxed(arg, "panic")
		}
		return
	case "":
		// Not a builtin: conversion or ordinary call, handled below.
	default:
		return
	}

	if tv, ok := sc.info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: string <-> []byte/[]rune copies into fresh memory.
		if len(call.Args) == 1 {
			from, to := sc.info.TypeOf(call.Args[0]), tv.Type
			if from != nil && allocatingConversion(from, to) {
				sc.alloc(Site{Kind: EffAlloc, Alloc: AllocConv, Pos: call.Pos(),
					Detail: fmt.Sprintf("%s -> %s", from, to)})
			}
		}
		return
	}

	callee := CalleeOf(sc.info, call)
	if callee == nil {
		sc.sum.Dynamic = append(sc.sum.Dynamic, Site{Kind: EffDynamic, Pos: call.Pos(), Fn: sc.fn})
	} else {
		if kind, ok := impureCall(callee); ok {
			sc.effect(Site{Kind: kind, Pos: call.Pos(), Callee: callee})
		}
		sc.sum.Calls = append(sc.sum.Calls, Call{Callee: callee, Expr: call})
	}

	// Interface-argument boxing, independent of whether the callee is
	// static.
	if sig, ok := sc.info.TypeOf(call.Fun).(*types.Signature); ok {
		np := sig.Params().Len()
		for i, arg := range call.Args {
			var param types.Type
			switch {
			case sig.Variadic() && i >= np-1:
				if call.Ellipsis != token.NoPos {
					continue // slice passed through, no per-element boxing
				}
				param = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
			case i < np:
				param = sig.Params().At(i).Type()
			default:
				continue
			}
			if _, isIface := param.Underlying().(*types.Interface); isIface {
				sc.boxed(arg, "interface argument")
			}
		}
	}
}

// boxed records a non-constant, non-pointer-shaped value converted to an
// interface: the conversion heap-allocates the boxed copy.
func (sc *scanner) boxed(arg ast.Expr, what string) {
	tv, ok := sc.info.Types[arg]
	if !ok || tv.Value != nil { // constants box to static data
		return
	}
	t := tv.Type
	if t == nil || t == types.Typ[types.UntypedNil] {
		return
	}
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: fits the interface word, no allocation
	}
	sc.alloc(Site{Kind: EffAlloc, Alloc: AllocBox, Pos: arg.Pos(), Detail: t.String(), BoxWhat: what})
}

// write classifies one assignment target against the model.
func (sc *scanner) write(lhs ast.Expr, pos token.Pos) {
	kind, root := ClassifyWrite(sc.info, sc.model, lhs)
	switch kind {
	case EffWriteConfig, EffWriteBox, EffWriteMap:
		sc.effect(Site{Kind: kind, Pos: pos, Root: root})
	default:
		// A plain write is still an effect when its root is a
		// package-level variable: the function mutates global state.
		if root != nil {
			if v, ok := sc.info.Uses[root].(*types.Var); ok && isPkgLevel(v) {
				sc.effect(Site{Kind: EffWriteGlobal, Pos: pos, Root: root})
			}
		}
	}
}

// isPkgLevel reports whether v is declared at package scope.
func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// ClassifyWrite walks the assignment target's access path outward-in and
// reports the most model-relevant memory it writes through, together with
// the path's root identifier (nil when the root is not a plain
// identifier). Rebinding a pointer variable (`p = q`) is not a write
// through it: only Selector/Index/Star steps dereference. The returned
// kind is one of EffWriteConfig, EffWriteBox, EffWriteMap, or -1 for a
// write the model does not care about.
func ClassifyWrite(info *types.Info, model Model, lhs ast.Expr) (EffectKind, *ast.Ident) {
	kind := EffectKind(-1)
	note := func(k EffectKind) {
		// Config and state-box writes outrank map writes: the closer to
		// the shared-memory model, the more specific the message.
		if k == EffWriteConfig || (k == EffWriteBox && kind != EffWriteConfig) || kind == -1 {
			kind = k
		}
	}
	classifyBase := func(base ast.Expr, isIndex bool) {
		t := info.TypeOf(base)
		if t == nil {
			return
		}
		switch {
		case model != nil && model.IsConfig(t):
			note(EffWriteConfig)
		case model != nil && model.IsStateBox(t):
			note(EffWriteBox)
		case isIndex:
			if _, ok := t.Underlying().(*types.Map); ok {
				note(EffWriteMap)
			}
		}
	}
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			classifyBase(x.X, false)
			e = x.X
		case *ast.IndexExpr:
			classifyBase(x.X, true)
			e = x.X
		case *ast.StarExpr:
			classifyBase(x.X, false)
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			root, _ := e.(*ast.Ident)
			return kind, root
		}
	}
}

// writeTargets yields every (target, pos) a statement mutates: assignment
// left-hand sides (definitions excluded — they bind fresh variables) and
// increment/decrement targets.
func writeTargets(n ast.Node, fn func(lhs ast.Expr, pos token.Pos)) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if s.Tok == token.DEFINE {
			return
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			fn(lhs, lhs.Pos())
		}
	case *ast.IncDecStmt:
		fn(s.X, s.X.Pos())
	}
}

// impureCall classifies calls that are impure regardless of their bodies:
// I/O, clock access, and process-global randomness.
func impureCall(fn *types.Func) (EffectKind, bool) {
	pkg := pkgPath(fn)
	name := fn.Name()
	switch pkg {
	case "os", "io", "bufio", "syscall", "log":
		return EffIO, true
	case "fmt":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || name == "Scan" || strings.HasPrefix(name, "Scan") || strings.HasPrefix(name, "Fscan") {
			return EffIO, true
		}
	case "time":
		switch name {
		case "Now", "Since", "Until", "Sleep", "Tick", "After", "AfterFunc", "NewTimer", "NewTicker":
			return EffClock, true
		}
	case "math/rand", "math/rand/v2":
		if IsGlobalRand(fn) {
			return EffRand, true
		}
	}
	if strings.HasPrefix(pkg, "net") {
		return EffIO, true
	}
	return 0, false
}

// allocatingConversion reports the conversions that copy into fresh heap
// memory.
func allocatingConversion(from, to types.Type) bool {
	isString := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteish := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isString(from) && isByteish(to)) || (isByteish(from) && isString(to))
}

// exprString renders an expression for textual buffer-identity checks.
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
