package dataflow_test

// The engine's integration surface — the real sim/flat model over the
// whole module — is exercised by internal/analysis's fixture and
// tree-clean tests. These unit tests pin the core machinery in isolation
// on a synthetic package with a toy model, where every expectation is
// visible in ten lines of source: summary classification, transitive
// cleanliness, alloc reachability, hop derivation and composition, and
// the shard-discipline walker.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"snappif/internal/analysis/dataflow"
)

// toyModel maps the synthetic package onto the engine's model hooks:
// Config is the configuration, cfg[i] is a state read indexed by i, and
// neighbors(p) is the adjacency call.
type toyModel struct{}

func (toyModel) IsConfig(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		if p, isPtr := t.(*types.Pointer); isPtr {
			n, ok = p.Elem().(*types.Named)
		}
	}
	return ok && n.Obj().Name() == "Config"
}

func (toyModel) IsStateBox(types.Type) bool { return false }

func (m toyModel) StateIndex(info *types.Info, e ast.Expr) (ast.Expr, bool, bool) {
	ix, ok := e.(*ast.IndexExpr)
	if !ok || !m.IsConfig(info.TypeOf(ix.X)) {
		return nil, false, false
	}
	return ix.Index, false, true
}

func (toyModel) IsNeighbors(callee *types.Func) bool { return callee.Name() == "neighbors" }

func (toyModel) IsParentField(*types.Info, *ast.SelectorExpr) bool { return false }

func (m toyModel) IsStateColumn(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && m.IsConfig(info.TypeOf(id))
}

const toySrc = `package toy

type Config []int

var global int

func neighbors(p int) []int { return nil }

func readOwn(c Config, p int) int { return c[p] }

func readHop(c Config, p int) int {
	t := 0
	for _, q := range neighbors(p) {
		t += c[q]
	}
	return t
}

func readTwo(c Config, p int) int {
	t := 0
	for _, q := range neighbors(p) {
		for _, r := range neighbors(q) {
			t += c[r]
		}
	}
	return t
}

func impure() { global++ }

func grow() []int { return make([]int, 4) }

func chain(c Config, p int) int {
	return readHop(c, p) + len(grow())
}

func tainted(c Config, p int) int {
	impure()
	return readOwn(c, p)
}
`

func loadToy(t *testing.T) (*dataflow.Engine, map[string]*types.Func) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "toy.go", toySrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.Default()}
	tpkg, err := conf.Check("toy", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	eng := dataflow.NewEngine([]*dataflow.Pkg{{
		Path:  "toy",
		Files: []*ast.File{file},
		Types: tpkg,
		Info:  info,
	}}, toyModel{})

	fns := make(map[string]*types.Func)
	eng.Funcs(func(fi *dataflow.FuncInfo) { fns[fi.Fn.Name()] = fi.Fn })
	return eng, fns
}

func TestEngineClean(t *testing.T) {
	eng, fns := loadToy(t)
	for name, want := range map[string]bool{
		"readOwn": true,
		"readHop": true,
		"readTwo": true,
		"grow":    false, // allocates; a disabled path may not
		"chain":   false, // transitively through grow
		"impure":  false, // writes a global
		"tainted": false, // transitively through impure
	} {
		if got := eng.Clean(fns[name]); got != want {
			t.Errorf("Clean(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestEngineReachableAllocs(t *testing.T) {
	eng, fns := loadToy(t)
	if sites := eng.ReachableAllocs(fns["readHop"]); len(sites) != 0 {
		t.Errorf("ReachableAllocs(readHop) = %v, want none", sites)
	}
	sites := eng.ReachableAllocs(fns["chain"])
	if len(sites) == 0 {
		t.Fatalf("ReachableAllocs(chain) found nothing; grow's make should be reachable")
	}
	if sites[0].Alloc != dataflow.AllocMake {
		t.Errorf("first reachable alloc kind = %v, want AllocMake", sites[0].Kind)
	}
}

func TestEngineHops(t *testing.T) {
	eng, fns := loadToy(t)
	for name, want := range map[string]int{
		"readOwn": 0, // c[p]: the acting processor itself
		"readHop": 1, // c[q] for q in neighbors(p)
		"readTwo": 2, // nested adjacency
		"chain":   1, // composes readHop through the call site
	} {
		h := eng.HopsOf(fns[name])
		if h == nil {
			t.Fatalf("HopsOf(%s) = nil", name)
		}
		if len(h.UnboundedSites) != 0 {
			t.Errorf("HopsOf(%s) has unbounded sites %v", name, h.UnboundedSites)
		}
		got := -1
		for _, hop := range h.ByParam {
			if hop > got {
				got = hop
			}
		}
		if got != want {
			t.Errorf("max hop of %s = %d, want %d", name, got, want)
		}
	}
}

func TestEngineReachable(t *testing.T) {
	eng, fns := loadToy(t)
	reach := eng.Reachable([]*types.Func{fns["chain"]})
	names := make(map[string]bool)
	for _, fi := range reach {
		names[fi.Fn.Name()] = true
	}
	for _, want := range []string{"chain", "readHop", "grow", "neighbors"} {
		if !names[want] {
			t.Errorf("Reachable(chain) missing %s: %v", want, names)
		}
	}
	if names["impure"] || names["tainted"] {
		t.Errorf("Reachable(chain) includes unreachable functions: %v", names)
	}
}

func TestEngineInfoAndParams(t *testing.T) {
	eng, fns := loadToy(t)
	fi := eng.Info(fns["readHop"])
	if fi == nil {
		t.Fatal("Info(readHop) = nil")
	}
	p0 := dataflow.ParamAt(fi, 0)
	p1 := dataflow.ParamAt(fi, 1)
	if p0 == nil || p0.Name() != "c" || p1 == nil || p1.Name() != "p" {
		t.Errorf("ParamAt(readHop) = %v, %v; want c, p", p0, p1)
	}
	if dataflow.ParamAt(fi, 2) != nil {
		t.Errorf("ParamAt past the last parameter should be nil")
	}
	if eng.Info(nil) != nil {
		t.Errorf("Info(nil) should be nil")
	}
}

func TestEngineSummaryEffects(t *testing.T) {
	eng, fns := loadToy(t)
	sum := eng.Summary(fns["impure"])
	if sum == nil {
		t.Fatal("Summary(impure) = nil")
	}
	found := false
	for _, s := range sum.Effects {
		if s.Kind == dataflow.EffWriteGlobal {
			found = true
		}
	}
	if !found {
		t.Errorf("Summary(impure) lacks the global-write effect: %+v", sum.Effects)
	}
}
