// Package dataflow is snapvet's interprocedural analysis core: per-function
// summaries of reads, writes, allocations, and calls, composed bottom-up
// over the static call graph with fixpoint handling for recursion. It is
// stdlib-only (go/ast + go/types), like the rest of the analyzer.
//
// The package knows nothing about the loader or the analyzers; it consumes
// type-checked packages (Pkg) and a Model describing which types embody the
// simulation model (configurations, state boxes, neighbor lists). On top of
// the summaries it answers the questions the contract analyzers ask:
//
//   - Effects: which impure operations (shared-state writes, map/channel
//     mutation, I/O, clock, global randomness) does a function — or anything
//     it statically reaches — perform, and where (guardpure, writelocal,
//     obspure).
//   - Hops: how far from a processor argument do a guard's state reads
//     travel, measured in neighbor-iteration depth (radiusbound). Recursive
//     guard helpers are widened to "unbounded" past MaxHop.
//   - Allocs: which expressions may heap-allocate, transitively (hotalloc's
//     interprocedural audit, obspure's disabled-path proof).
//   - Shard: which writes in sweep-worker code are keyed by shard-derived
//     indices and which escape the disjoint-slot discipline (sharddisjoint).
//
// Approximations, recorded here once: call edges follow callees the type
// checker resolves to a concrete *types.Func; calls through interface
// values or function-typed variables have no edge and surface as
// EffDynamic sites so analyzers can decide whether "unknown" is a finding.
// The intraprocedural walks are flow-insensitive except for source order:
// a variable's derivation is the last one assigned before the use in
// source order, which is exact for the straight-line guard and kernel code
// this repository writes.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Pkg is one type-checked package handed to the engine.
type Pkg struct {
	// Path is the import path (test variants share their base package's
	// path).
	Path string
	// Files are the parsed files whose declarations this package owns.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the checker's expression/object tables.
	Info *types.Info
}

// Model tells the engine which types and calls embody the simulation
// model. Implementations must be robust to the same source being
// type-checked into several universes (test variants): match by name and
// import path, not object identity.
type Model interface {
	// IsConfig reports whether t is a global-configuration type
	// (sim.Configuration, flat.Config), possibly behind a pointer.
	IsConfig(t types.Type) bool
	// IsStateBox reports whether t is a shared processor-state box: a
	// pointer implementing the state interface, or the interface itself.
	IsStateBox(t types.Type) bool
	// StateIndex reports whether e reads processor state indexed by an
	// expression: c.States[i], a flat state column c.pif[i], … idx is the
	// processor-index expression; parent is true when the read yields a
	// neighbor pointer (the Par column) rather than opaque state.
	StateIndex(info *types.Info, e ast.Expr) (idx ast.Expr, parent bool, ok bool)
	// IsNeighbors reports whether callee returns the neighbor list of its
	// single processor-index argument (graph.Graph.Neighbors,
	// flat Config.neighbors).
	IsNeighbors(callee *types.Func) bool
	// IsParentField reports whether sel selects a neighbor-pointer field
	// (core.State.Par) from a state value.
	IsParentField(info *types.Info, sel *ast.SelectorExpr) bool
	// IsStateColumn reports whether e denotes an entire per-processor
	// state column (c.States, a flat field slice) — ranging over one
	// reads state at every processor.
	IsStateColumn(info *types.Info, e ast.Expr) bool
}

// EffectKind classifies one summary site.
type EffectKind int

const (
	// EffWriteConfig mutates a global configuration.
	EffWriteConfig EffectKind = iota
	// EffWriteBox mutates a shared processor-state box.
	EffWriteBox
	// EffWriteMap stores into a map.
	EffWriteMap
	// EffWriteGlobal writes a package-level variable.
	EffWriteGlobal
	// EffSend sends on a channel.
	EffSend
	// EffClose closes a channel.
	EffClose
	// EffDelete deletes from a map.
	EffDelete
	// EffPrint calls the print/println builtins.
	EffPrint
	// EffIO calls an I/O-performing stdlib function.
	EffIO
	// EffClock reads the wall clock.
	EffClock
	// EffRand draws from the process-global math/rand source.
	EffRand
	// EffAlloc may heap-allocate (alloc sites live in Summary.Allocs).
	EffAlloc
	// EffDynamic is a call with no static callee (interface method or
	// function value): the summary is incomplete past it.
	EffDynamic
)

// AllocKind classifies one allocation site (Site.Alloc).
type AllocKind int

const (
	// AllocMake is a make call.
	AllocMake AllocKind = iota
	// AllocNew is a new call.
	AllocNew
	// AllocLit is a slice or map composite literal.
	AllocLit
	// AllocAddrComposite takes the address of a composite literal.
	AllocAddrComposite
	// AllocClosure creates a function literal.
	AllocClosure
	// AllocAppend is an append whose result does not feed its own buffer.
	AllocAppend
	// AllocBox converts a non-pointer-shaped value to an interface.
	AllocBox
	// AllocConv is a string<->[]byte/[]rune conversion.
	AllocConv
)

// Site is one classified operation in a function body.
type Site struct {
	// Kind classifies the operation.
	Kind EffectKind
	// Alloc refines Kind == EffAlloc.
	Alloc AllocKind
	// Pos locates the operation.
	Pos token.Pos
	// Fn is the function whose body contains the site.
	Fn *types.Func
	// Callee is the resolved target for call sites (EffIO/EffClock/
	// EffRand), nil otherwise.
	Callee *types.Func
	// Detail is a pre-rendered fragment for messages (builtin name, boxed
	// type, conversion shape).
	Detail string
	// BoxWhat distinguishes boxing contexts ("interface argument",
	// "panic") for EffAlloc/AllocBox sites.
	BoxWhat string
	// Root is the write path's root identifier (EffWrite*), nil when the
	// root is not a plain identifier.
	Root *ast.Ident
}

// Call is one resolved call site.
type Call struct {
	// Callee is the static target.
	Callee *types.Func
	// Expr is the call expression.
	Expr *ast.CallExpr
}

// Summary is the intraprocedural summary of one function body: its own
// effect and allocation sites plus its resolved calls. Transitive facts
// (reachability, hop bounds, shard obligations) are computed by the
// engine on top.
type Summary struct {
	// Fn identifies the function.
	Fn *types.Func
	// Effects are the function's own impure operations, in source order.
	Effects []Site
	// Allocs are the function's own may-allocate sites, in source order.
	Allocs []Site
	// Calls are the resolved call sites, in source order.
	Calls []Call
	// Dynamic are the unresolved call sites (EffDynamic), in source order.
	Dynamic []Site
}

// FuncInfo is one declared module function.
type FuncInfo struct {
	// Fn is the type checker's object.
	Fn *types.Func
	// Decl is the declaration (Body non-nil).
	Decl *ast.FuncDecl
	// Pkg is the declaring package.
	Pkg *Pkg
}

// MaxHop is the widening bound for hop-depth fixpoints: a derived radius
// that exceeds it (mutual recursion over neighbor scans) is reported as
// unbounded rather than iterated further. No real guard reads anywhere
// near this deep.
const MaxHop = 16

// Unbounded marks a state read whose processor index does not derive from
// any parameter's neighbor iteration.
const Unbounded = MaxHop + 1

// Hops is the neighbor-read summary of one function: for each parameter
// (flat index over the declared parameters, receiver excluded), the
// maximum hop distance at which state is read relative to that parameter,
// and the sites whose read index is statically unbounded.
type Hops struct {
	// ByParam maps parameter index -> max hop of state reads derived from
	// it (present only for parameters with at least one derived read).
	ByParam map[int]int
	// RetState maps parameter index -> hop offset when the function
	// returns a state value read at that offset from the parameter
	// (st(c, p) returns the state of p: RetState[1] = 0).
	RetState map[int]int
	// RetNeighbor maps parameter index -> hop offset when the function
	// returns a processor index one neighbor hop beyond the parameter
	// (bestPotential(c, p) returns a neighbor of p: RetNeighbor[1] = 1).
	RetNeighbor map[int]int
	// UnboundedSites are state reads at statically underivable indices.
	UnboundedSites []token.Pos
}

// Engine builds and caches summaries over a set of packages.
type Engine struct {
	model Model
	pkgs  []*Pkg

	funcs     map[*types.Func]*FuncInfo
	summaries map[*types.Func]*Summary
	hops      map[*types.Func]*Hops
	hopDone   map[*types.Func]bool
	allocs    map[*types.Func][]Site
	allocing  map[*types.Func]bool
}

// NewEngine indexes every declared function body in pkgs.
func NewEngine(pkgs []*Pkg, model Model) *Engine {
	e := &Engine{
		model:     model,
		pkgs:      pkgs,
		funcs:     make(map[*types.Func]*FuncInfo),
		summaries: make(map[*types.Func]*Summary),
		hops:      make(map[*types.Func]*Hops),
		hopDone:   make(map[*types.Func]bool),
		allocs:    make(map[*types.Func][]Site),
		allocing:  make(map[*types.Func]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					e.funcs[fn] = &FuncInfo{Fn: fn, Decl: fd, Pkg: pkg}
				}
			}
		}
	}
	return e
}

// Info returns the declaration record for fn, or nil when fn has no body
// in the analyzed packages (stdlib, interface method).
func (e *Engine) Info(fn *types.Func) *FuncInfo { return e.funcs[fn] }

// Funcs iterates every indexed function.
func (e *Engine) Funcs(yield func(*FuncInfo)) {
	for _, fi := range e.funcs {
		yield(fi)
	}
}

// Summary returns fn's intraprocedural summary, built on first use.
func (e *Engine) Summary(fn *types.Func) *Summary {
	if s, ok := e.summaries[fn]; ok {
		return s
	}
	fi := e.funcs[fn]
	if fi == nil {
		return nil
	}
	s := buildSummary(e.model, fi)
	e.summaries[fn] = s
	return s
}

// Reachable returns every analyzed function reachable from roots along
// static call edges, roots included (only functions with bodies appear),
// in deterministic discovery order.
func (e *Engine) Reachable(roots []*types.Func) []*FuncInfo {
	seen := make(map[*types.Func]bool)
	var out []*FuncInfo
	stack := append([]*types.Func(nil), roots...)
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		fi := e.funcs[fn]
		if fi == nil {
			continue
		}
		out = append(out, fi)
		sum := e.Summary(fn)
		for i := len(sum.Calls) - 1; i >= 0; i-- {
			stack = append(stack, sum.Calls[i].Callee)
		}
	}
	return out
}

// ReachableAllocs returns every may-allocate site statically reachable
// from fn (fn's own body included), memoized. Recursion is handled by the
// in-progress marker: a cycle contributes its members' own sites exactly
// once.
func (e *Engine) ReachableAllocs(fn *types.Func) []Site {
	if s, ok := e.allocs[fn]; ok {
		return s
	}
	if e.allocing[fn] {
		return nil // cycle: the initiator accumulates the members' sites
	}
	fi := e.funcs[fn]
	if fi == nil {
		return nil
	}
	e.allocing[fn] = true
	sum := e.Summary(fn)
	sites := append([]Site(nil), sum.Allocs...)
	for _, c := range sum.Calls {
		sites = append(sites, e.ReachableAllocs(c.Callee)...)
	}
	delete(e.allocing, fn)
	e.allocs[fn] = sites
	return sites
}

// Clean reports whether fn and everything it reaches is statically free
// of effects, allocations, and dynamic calls — the obligation of a
// disabled-path statement.
func (e *Engine) Clean(fn *types.Func) bool {
	if e.funcs[fn] == nil {
		return false // no body: unknown, assume dirty
	}
	for _, fi := range e.Reachable([]*types.Func{fn}) {
		sum := e.Summary(fi.Fn)
		if len(sum.Effects) > 0 || len(sum.Allocs) > 0 || len(sum.Dynamic) > 0 {
			return false
		}
	}
	return true
}

// HopsOf returns fn's neighbor-read summary, computing the interprocedural
// fixpoint over fn's reachable subgraph on first use. Hop values are
// widened to Unbounded past MaxHop, so recursion converges.
func (e *Engine) HopsOf(fn *types.Func) *Hops {
	if e.hopDone[fn] {
		return e.hops[fn]
	}
	fis := e.Reachable([]*types.Func{fn})
	// Seed every function in the subgraph with its body-only hops, then
	// iterate to a fixpoint: each pass re-runs the intraprocedural walk
	// with the latest callee summaries. Monotone in a finite lattice
	// (hops capped at Unbounded), so this terminates.
	for changed := true; changed; {
		changed = false
		for _, fi := range fis {
			next := hopWalk(e, fi)
			if !hopsEqual(e.hops[fi.Fn], next) {
				e.hops[fi.Fn] = next
				changed = true
			}
		}
	}
	// Every function in the converged subgraph is itself converged for
	// its own (smaller) subgraph.
	for _, fi := range fis {
		e.hopDone[fi.Fn] = true
	}
	return e.hops[fn]
}

func hopsEqual(a, b *Hops) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.ByParam) != len(b.ByParam) || len(a.RetState) != len(b.RetState) ||
		len(a.RetNeighbor) != len(b.RetNeighbor) || len(a.UnboundedSites) != len(b.UnboundedSites) {
		return false
	}
	for k, v := range a.ByParam {
		if b.ByParam[k] != v {
			return false
		}
	}
	for k, v := range a.RetState {
		if b.RetState[k] != v {
			return false
		}
	}
	for k, v := range a.RetNeighbor {
		if b.RetNeighbor[k] != v {
			return false
		}
	}
	return true
}

// CalleeOf resolves a call expression's static callee, or nil for
// builtins, conversions, and dynamic calls.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Qualified call: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// BuiltinName returns the name of the builtin a call invokes, or "".
func BuiltinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// IsGlobalRand reports whether fn is a package-level math/rand function
// drawing from the process-global source (methods on *rand.Rand and the
// seeded constructors are deterministic and allowed).
func IsGlobalRand(fn *types.Func) bool {
	switch pkgPath(fn) {
	case "math/rand", "math/rand/v2":
	default:
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

// pkgPath returns the import path of fn's package ("" for builtins and
// functions without packages).
func pkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// PkgPath is pkgPath, exported for analyzers formatting messages.
func PkgPath(fn *types.Func) string { return pkgPath(fn) }

// ParamAt returns the object of fn's i-th declared parameter (receiver
// excluded), or nil.
func ParamAt(fi *FuncInfo, i int) types.Object {
	params := fi.Decl.Type.Params
	if params == nil {
		return nil
	}
	n := 0
	for _, field := range params.List {
		for _, name := range field.Names {
			if n == i {
				return fi.Pkg.Info.Defs[name]
			}
			n++
		}
		if len(field.Names) == 0 {
			n++
		}
	}
	return nil
}
