package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file proves shard-disjointness: code reachable from a sweep-worker
// goroutine may write shared memory only through slots keyed by a
// shard-derived index, so no two workers can ever write the same slot.
//
// "Shard-derived" is a taint lattice seeded at the goroutine root:
//
//   - the root's own parameters (each goroutine is launched with distinct
//     arguments — the worker ID),
//   - values received from the root's job channel (the orchestrator
//     distributes disjoint shard descriptors; this is the sanctioned
//     fan-out pattern, and the serial sender is not worker code),
//
// and propagated through field selection on derived values, indexing and
// subslicing by derived indices, arithmetic with constants, conversions,
// and calls (a callee parameter is derived when every call site passes a
// derived argument — checked context-sensitively per call). Writes
// allowed without derivation: locals, writes through pointers that
// provably point at a derived slot or a local, and calls into sync /
// sync/atomic. Everything else — shared field writes, map and global
// writes, element writes at non-derived indices, and calls the type
// checker cannot resolve — is a violation.

// ShardViolationKind classifies one escape from the discipline.
type ShardViolationKind int

const (
	// ShardFieldWrite writes a field of shared memory (receiver, shared
	// struct) rather than a derived slot.
	ShardFieldWrite ShardViolationKind = iota
	// ShardIndexWrite writes an element at a non-shard-derived index.
	ShardIndexWrite
	// ShardMapWrite stores into (or deletes from) a map.
	ShardMapWrite
	// ShardGlobalWrite writes a package-level variable.
	ShardGlobalWrite
	// ShardPtrWrite stores through a pointer not proven to target a
	// derived slot or a local.
	ShardPtrWrite
	// ShardDynamicCall is a call with no static callee: the discipline
	// cannot be verified past it.
	ShardDynamicCall
	// ShardSend sends on a channel from worker code.
	ShardSend
)

// ShardViolation is one escape, attributed to the function containing it.
type ShardViolation struct {
	Kind ShardViolationKind
	Pos  token.Pos
	Fn   *types.Func
}

// ShardCheck verifies every function reachable from the goroutine root fn
// against the disjoint-slot write discipline. Violations are deduplicated
// by position (the same callee checked under several contexts reports a
// site once) and returned in source order.
func (e *Engine) ShardCheck(root *types.Func) []ShardViolation {
	sw := &shardChecker{e: e, seen: make(map[string]bool), reported: make(map[token.Pos]bool)}
	fi := e.funcs[root]
	if fi == nil {
		return nil
	}
	// Every root parameter is derived: goroutines are launched with
	// distinct arguments.
	n := paramCount(fi)
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	sw.check(fi, mask, true)
	sort.Slice(sw.out, func(i, j int) bool { return sw.out[i].Pos < sw.out[j].Pos })
	return sw.out
}

type shardChecker struct {
	e        *Engine
	seen     map[string]bool
	reported map[token.Pos]bool
	out      []ShardViolation
}

func paramCount(fi *FuncInfo) int {
	params := fi.Decl.Type.Params
	if params == nil {
		return 0
	}
	n := 0
	for _, field := range params.List {
		if len(field.Names) == 0 {
			n++
		} else {
			n += len(field.Names)
		}
	}
	return n
}

func (sw *shardChecker) violate(kind ShardViolationKind, pos token.Pos, fn *types.Func) {
	if sw.reported[pos] {
		return
	}
	sw.reported[pos] = true
	sw.out = append(sw.out, ShardViolation{Kind: kind, Pos: pos, Fn: fn})
}

// check walks one function under a parameter-derivation context. chanRoot
// marks the goroutine entry, where channel receives yield derived shard
// descriptors.
func (sw *shardChecker) check(fi *FuncInfo, mask []bool, chanRoot bool) {
	key := fmt.Sprintf("%p|%v|%v", fi.Fn, mask, chanRoot)
	if sw.seen[key] {
		return
	}
	sw.seen[key] = true

	w := &shardWalker{sw: sw, fi: fi, info: fi.Pkg.Info, derived: make(map[types.Object]bool)}
	for i, ok := range mask {
		if ok {
			if obj := ParamAt(fi, i); obj != nil {
				w.derived[obj] = true
			}
		}
	}
	w.chanRoot = chanRoot
	w.walk(fi.Decl.Body)
}

type shardWalker struct {
	sw       *shardChecker
	fi       *FuncInfo
	info     *types.Info
	derived  map[types.Object]bool
	chanRoot bool
}

func (w *shardWalker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			w.assign(x)
		case *ast.IncDecStmt:
			w.write(x.X, x.X.Pos())
		case *ast.RangeStmt:
			w.rangeStmt(x)
		case *ast.SendStmt:
			w.sw.violate(ShardSend, x.Pos(), w.fi.Fn)
		case *ast.CallExpr:
			w.call(x)
		}
		return true
	})
}

func (w *shardWalker) bind(lhs ast.Expr, derived bool) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := lookupObj(w.info, id); obj != nil {
		w.derived[obj] = derived
	}
}

func (w *shardWalker) assign(as *ast.AssignStmt) {
	if as.Tok == token.DEFINE {
		if len(as.Lhs) == len(as.Rhs) {
			for i := range as.Lhs {
				w.bind(as.Lhs[i], w.isDerived(as.Rhs[i]))
			}
		} else if len(as.Lhs) == 2 && len(as.Rhs) == 1 {
			// v, ok := <-ch / m[k] / x.(T)
			w.bind(as.Lhs[0], w.isDerived(as.Rhs[0]))
			w.bind(as.Lhs[1], false)
		}
		return
	}
	for i, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			// Plain local rebinding: not a shared write; update taint.
			if obj := lookupObj(w.info, id); obj != nil && !isPkgLevel2(obj) {
				if i < len(as.Rhs) {
					w.derived[obj] = w.isDerived(as.Rhs[i])
				}
				continue
			}
		}
		w.write(lhs, lhs.Pos())
	}
}

func isPkgLevel2(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// write classifies one mutation target against the discipline.
func (w *shardWalker) write(lhs ast.Expr, pos token.Pos) {
	e := ast.Unparen(lhs)
	switch x := e.(type) {
	case *ast.Ident:
		if obj := lookupObj(w.info, x); obj != nil && isPkgLevel2(obj) {
			w.sw.violate(ShardGlobalWrite, pos, w.fi.Fn)
		}
		return
	case *ast.IndexExpr:
		if t := w.info.TypeOf(x.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				w.sw.violate(ShardMapWrite, pos, w.fi.Fn)
				return
			}
		}
		if w.isDerived(x.Index) {
			return // disjoint slot: index is shard-derived
		}
		// An element write at a non-derived index is still fine when the
		// backing store itself is derived or local-owned.
		if w.isDerived(x.X) || w.isLocalOwned(x.X) {
			return
		}
		w.sw.violate(ShardIndexWrite, pos, w.fi.Fn)
		return
	case *ast.StarExpr:
		if w.isDerived(x.X) || w.isLocalOwned(x.X) {
			return
		}
		w.sw.violate(ShardPtrWrite, pos, w.fi.Fn)
		return
	case *ast.SelectorExpr:
		// Field write: allowed on derived values (a job struct copy, a
		// derived-slot pointer) and on locals; a field of shared memory
		// is not a slot.
		if w.isDerived(x.X) || w.isLocalOwned(x.X) {
			return
		}
		w.sw.violate(ShardFieldWrite, pos, w.fi.Fn)
		return
	default:
		// Conservative: unknown write shape.
		w.sw.violate(ShardFieldWrite, pos, w.fi.Fn)
	}
}

// isLocalOwned reports whether e is (a path into) a non-pointer local
// variable: writes to it stay on this goroutine's stack.
func (w *shardWalker) isLocalOwned(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := lookupObj(w.info, x)
			if obj == nil || isPkgLevel2(obj) {
				return false
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return false
			}
			// A pointer-typed variable may alias shared memory; only its
			// derivation (tracked separately) makes it safe.
			if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
				return false
			}
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				return false
			}
			if _, isMap := v.Type().Underlying().(*types.Map); isMap {
				return false
			}
			// Declared in this function (not a field, not a param of an
			// enclosing scope we can't see).
			return v.Parent() != nil && v.Pkg() != nil && v.Parent() != v.Pkg().Scope()
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			return false
		default:
			return false
		}
	}
}

// isDerived reports whether e's value is shard-derived.
func (w *shardWalker) isDerived(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := lookupObj(w.info, x); obj != nil {
			return w.derived[obj]
		}
	case *ast.SelectorExpr:
		// A field of a derived value (job.lo) is derived.
		return w.isDerived(x.X)
	case *ast.IndexExpr:
		// Loading any store at a derived index yields that slot's
		// content: the shard's own data.
		return w.isDerived(x.Index)
	case *ast.SliceExpr:
		lo := x.Low == nil || w.isDerived(x.Low) || isConstExpr(w.info, x.Low)
		hi := x.High == nil || w.isDerived(x.High) || isConstExpr(w.info, x.High)
		one := (x.Low != nil && w.isDerived(x.Low)) || (x.High != nil && w.isDerived(x.High))
		return lo && hi && one
	case *ast.BinaryExpr:
		lx := w.isDerived(x.X) || isConstExpr(w.info, x.X)
		ly := w.isDerived(x.Y) || isConstExpr(w.info, x.Y)
		one := w.isDerived(x.X) || w.isDerived(x.Y)
		return lx && ly && one
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// &X[derived] and &local are private-slot pointers.
			if ix, ok := ast.Unparen(x.X).(*ast.IndexExpr); ok {
				return w.isDerived(ix.Index)
			}
			return w.isLocalOwned(x.X)
		}
		return w.isDerived(x.X)
	case *ast.CallExpr:
		// Conversions preserve derivation.
		if tv, ok := w.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return w.isDerived(x.Args[0])
		}
	}
	return false
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return false
	}
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// rangeStmt handles the derived iteration shapes.
func (w *shardWalker) rangeStmt(r *ast.RangeStmt) {
	t := w.info.TypeOf(r.X)
	if t != nil {
		if _, isChan := t.Underlying().(*types.Chan); isChan {
			// Receiving from the job channel at the goroutine root yields
			// shard descriptors; anywhere else the values are untrusted.
			w.bind2(r.Key, w.chanRoot)
			w.bind2(r.Value, false)
			return
		}
	}
	// range X[lo:hi] with derived bounds: values are the shard's items.
	// The key is an offset within the subslice — shared across shards —
	// so it stays underived.
	w.bind2(r.Value, w.isDerived(r.X))
	w.bind2(r.Key, false)
}

func (w *shardWalker) bind2(lhs ast.Expr, derived bool) {
	if lhs == nil {
		return
	}
	w.bind(lhs, derived)
}

// call checks builtins, sanctioned packages, and recurses into static
// callees under the argument-derived context.
func (w *shardWalker) call(call *ast.CallExpr) {
	switch BuiltinName(w.info, call) {
	case "delete":
		w.sw.violate(ShardMapWrite, call.Pos(), w.fi.Fn)
		return
	case "":
		// Conversion or ordinary call.
	default:
		return
	}
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	callee := CalleeOf(w.info, call)
	if callee == nil {
		w.sw.violate(ShardDynamicCall, call.Pos(), w.fi.Fn)
		return
	}
	pkg := pkgPath(callee)
	if pkg == "sync" || pkg == "sync/atomic" || strings.HasPrefix(pkg, "internal/race") {
		return // synchronization primitives order their own memory
	}
	fi := w.sw.e.funcs[callee]
	if fi == nil {
		return // no body: cannot write our shared state through values it got
	}
	mask := make([]bool, paramCount(fi))
	for i := range mask {
		if arg := argForParam(call, fi, i); arg != nil {
			mask[i] = w.isDerived(arg)
		}
	}
	w.sw.check(fi, mask, false)
}

// argForParam maps a declared-parameter index to the call argument
// (handling the variadic tail conservatively: nil).
func argForParam(call *ast.CallExpr, fi *FuncInfo, i int) ast.Expr {
	if i < len(call.Args) {
		return call.Args[i]
	}
	return nil
}
