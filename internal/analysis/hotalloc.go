package analysis

import (
	"go/ast"
	"go/types"

	"snappif/internal/analysis/dataflow"
)

// hotalloc is the static complement of the CI AllocsPerRun gates: inside
// functions annotated `//snapvet:hotpath` (the InPlaceProtocol step path)
// it flags every construct that can heap-allocate per step — make/new,
// escaping composite literals, appends that may grow, closures, interface
// boxing, and allocating conversions. The dataflow engine extends the
// check across calls: a hot-path function calling an unannotated module
// function whose reachable body can allocate is flagged at the call site,
// so the annotation set stays closed under the real call graph. Callees
// that never run per step opt out with `//snapvet:coldpath <reason>`.
var hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no per-step heap allocation constructs in //snapvet:hotpath functions",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) {
	eng := pass.engine()

	// The annotation maps key *ast.FuncDecl; the engine keys *types.Func.
	// Resolve both directions once.
	hot := make(map[*types.Func]bool)
	cold := make(map[*types.Func]bool)
	for fd := range pass.ann.hotpath {
		if fn := pass.declFunc(fd); fn != nil {
			hot[fn] = true
		}
	}
	for fd := range pass.ann.coldpath {
		if fn := pass.declFunc(fd); fn != nil {
			cold[fn] = true
		}
	}

	for fd, ok := range pass.ann.hotpath {
		if !ok || fd.Body == nil {
			continue
		}
		pkg := pass.ownerPackage(fd)
		if pkg == nil {
			continue
		}
		checkHotBody(pass, eng, pkg, fd, hot, cold)
	}
}

// declFunc resolves a declaration to its type-checker object.
func (p *Pass) declFunc(fd *ast.FuncDecl) *types.Func {
	pkg := p.ownerPackage(fd)
	if pkg == nil {
		return nil
	}
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	return fn
}

// ownerPackage finds the package containing a declaration.
func (p *Pass) ownerPackage(fd *ast.FuncDecl) *Package {
	for _, pkg := range p.Prog.Packages {
		for _, file := range pkg.Files {
			if file.Pos() <= fd.Pos() && fd.Pos() <= file.End() {
				return pkg
			}
		}
	}
	return nil
}

func checkHotBody(pass *Pass, eng *dataflow.Engine, pkg *Package, fd *ast.FuncDecl, hot, cold map[*types.Func]bool) {
	fname := fd.Name.Name

	// The function's own allocation sites, classified by the summary
	// scanner (same walk the engine uses for summaries).
	dfPkg := &dataflow.Pkg{Path: pkg.Path, Files: pkg.Files, Types: pkg.Pkg, Info: pkg.Info}
	_, allocs := dataflow.ScanNode(pass.simTypes(), dfPkg, nil, fd.Body)
	for _, a := range allocs {
		reportHotAlloc(pass, fname, a)
	}

	// The transitive audit: a call to an unannotated module function whose
	// reachable body can allocate means either the callee belongs on the
	// hot path (annotate it //snapvet:hotpath and fix it) or it never runs
	// per step (annotate it //snapvet:coldpath <reason>).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := dataflow.CalleeOf(pkg.Info, call)
		if callee == nil || hot[callee] || cold[callee] {
			return true
		}
		fi := eng.Info(callee)
		if fi == nil {
			return true // no body in the module: stdlib, covered by boxing checks
		}
		var leak *dataflow.Site
		for _, site := range eng.ReachableAllocs(callee) {
			if hot[site.Fn] || cold[site.Fn] {
				continue // checked directly, or sanctioned as off-step
			}
			if pass.suppressedAt(site.Pos) {
				continue // vouched for at the site
			}
			leak = &site
			break
		}
		if leak != nil {
			pos := pass.Prog.Fset.Position(leak.Pos)
			pass.Report(call.Pos(), "hotpath %s calls %s, which can allocate (%s at %s:%d); annotate the callee //snapvet:hotpath and fix it, or //snapvet:coldpath <reason> if it never runs per step",
				fname, callee.Name(), allocDesc(leak.Alloc), pass.relFile(pos.Filename), pos.Line)
		}
		return true
	})
}

// reportHotAlloc renders one allocation site in hotalloc's message
// vocabulary.
func reportHotAlloc(pass *Pass, fname string, a dataflow.Site) {
	switch a.Alloc {
	case dataflow.AllocAddrComposite:
		pass.Report(a.Pos, "hotpath %s takes the address of a composite literal (escapes to the heap)", fname)
	case dataflow.AllocLit:
		pass.Report(a.Pos, "hotpath %s builds a %s literal (allocates); preallocate in the constructor", fname, a.Detail)
	case dataflow.AllocClosure:
		pass.Report(a.Pos, "hotpath %s creates a closure (captured variables may escape); hoist it or annotate //snapvet:ok <reason>", fname)
	case dataflow.AllocMake:
		pass.Report(a.Pos, "hotpath %s calls make (allocates per step); move the allocation to setup", fname)
	case dataflow.AllocNew:
		pass.Report(a.Pos, "hotpath %s calls new (allocates per step); move the allocation to setup", fname)
	case dataflow.AllocAppend:
		pass.Report(a.Pos, "hotpath %s append result does not feed back into its buffer; growth allocates — use x = append(x[:0], ...) into a reused buffer", fname)
	case dataflow.AllocBox:
		pass.Report(a.Pos, "hotpath %s boxes %s into an %s (allocates); keep hot-path calls monomorphic", fname, a.Detail, a.BoxWhat)
	case dataflow.AllocConv:
		pass.Report(a.Pos, "hotpath %s conversion %s copies (allocates)", fname, a.Detail)
	}
}

// allocDesc names an allocation kind for the transitive-audit message.
func allocDesc(k dataflow.AllocKind) string {
	switch k {
	case dataflow.AllocMake:
		return "make"
	case dataflow.AllocNew:
		return "new"
	case dataflow.AllocLit:
		return "a composite literal"
	case dataflow.AllocAddrComposite:
		return "an escaping composite literal"
	case dataflow.AllocClosure:
		return "a closure"
	case dataflow.AllocAppend:
		return "append growth"
	case dataflow.AllocBox:
		return "interface boxing"
	case dataflow.AllocConv:
		return "an allocating conversion"
	default:
		return "an allocation"
	}
}
