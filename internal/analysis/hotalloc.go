package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// hotalloc is the static complement of the CI AllocsPerRun gates: inside
// functions annotated `//snapvet:hotpath` (the InPlaceProtocol step path)
// it flags every construct that can heap-allocate per step — make/new,
// escaping composite literals, appends that may grow, closures, interface
// boxing, and allocating conversions. The runtime gates prove the budget
// holds today; this analyzer points at the exact expression when a future
// edit would break it.
var hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no per-step heap allocation constructs in //snapvet:hotpath functions",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) {
	for fd, ok := range pass.ann.hotpath {
		if !ok || fd.Body == nil {
			continue
		}
		pkg := pass.ownerPackage(fd)
		if pkg == nil {
			continue
		}
		checkHotBody(pass, pkg, fd)
	}
}

// ownerPackage finds the package containing a declaration.
func (p *Pass) ownerPackage(fd *ast.FuncDecl) *Package {
	for _, pkg := range p.Prog.Packages {
		for _, file := range pkg.Files {
			if file.Pos() <= fd.Pos() && fd.Pos() <= file.End() {
				return pkg
			}
		}
	}
	return nil
}

func checkHotBody(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	info := pkg.Info
	fname := fd.Name.Name

	// safeAppends are `x = append(x, ...)` / `x = append(x[:k], ...)`
	// self-appends: amortized growth into a buffer that is reused across
	// steps, the engine's sanctioned pattern.
	safeAppends := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || builtinName(info, call) != "append" || len(call.Args) == 0 {
				continue
			}
			base := ast.Unparen(call.Args[0])
			if sl, ok := base.(*ast.SliceExpr); ok {
				base = sl.X
			}
			if exprString(as.Lhs[i]) == exprString(base) {
				safeAppends[call] = true
			}
		}
		return true
	})

	// addrTaken marks composite literals under a & operator (reported at
	// the & so struct literals by value stay silent).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Report(x.Pos(), "hotpath %s takes the address of a composite literal (escapes to the heap)", fname)
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(x)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Report(x.Pos(), "hotpath %s builds a %s literal (allocates); preallocate in the constructor", fname, typeKind(t))
			}
		case *ast.FuncLit:
			pass.Report(x.Pos(), "hotpath %s creates a closure (captured variables may escape); hoist it or annotate //snapvet:ok <reason>", fname)
		case *ast.CallExpr:
			checkHotCall(pass, info, fname, x, safeAppends)
		}
		return true
	})
}

func checkHotCall(pass *Pass, info *types.Info, fname string, call *ast.CallExpr, safeAppends map[*ast.CallExpr]bool) {
	switch builtinName(info, call) {
	case "make":
		pass.Report(call.Pos(), "hotpath %s calls make (allocates per step); move the allocation to setup", fname)
		return
	case "new":
		pass.Report(call.Pos(), "hotpath %s calls new (allocates per step); move the allocation to setup", fname)
		return
	case "append":
		if !safeAppends[call] {
			pass.Report(call.Pos(), "hotpath %s append result does not feed back into its buffer; growth allocates — use x = append(x[:0], ...) into a reused buffer", fname)
		}
		return
	case "panic":
		for _, arg := range call.Args {
			reportBoxed(pass, info, fname, arg, "panic")
		}
		return
	case "":
		// Not a builtin: conversion or ordinary call, handled below.
	default:
		return
	}

	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: string <-> []byte/[]rune copies into fresh memory.
		if len(call.Args) == 1 {
			from, to := info.TypeOf(call.Args[0]), tv.Type
			if from != nil && allocatingConversion(from, to) {
				pass.Report(call.Pos(), "hotpath %s conversion %s -> %s copies (allocates)", fname, from, to)
			}
		}
		return
	}

	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			param = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isIface := param.Underlying().(*types.Interface); isIface {
			reportBoxed(pass, info, fname, arg, "interface argument")
		}
	}
}

// reportBoxed flags a non-constant, non-pointer-shaped value converted to
// an interface: the conversion heap-allocates the boxed copy.
func reportBoxed(pass *Pass, info *types.Info, fname string, arg ast.Expr, what string) {
	tv, ok := info.Types[arg]
	if !ok || tv.Value != nil { // constants box to static data
		return
	}
	t := tv.Type
	if t == nil || t == types.Typ[types.UntypedNil] {
		return
	}
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: fits the interface word, no allocation
	}
	pass.Report(arg.Pos(), "hotpath %s boxes %s into an %s (allocates); keep hot-path calls monomorphic", fname, t, what)
}

// allocatingConversion reports the conversions that copy into fresh heap
// memory.
func allocatingConversion(from, to types.Type) bool {
	isString := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteish := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isString(from) && isByteish(to)) || (isByteish(from) && isString(to))
}

// typeKind names a composite literal's shape for messages.
func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	default:
		return "composite"
	}
}

// exprString renders an expression for textual buffer-identity checks.
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
