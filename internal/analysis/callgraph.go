package analysis

import (
	"go/ast"
	"go/types"
)

// funcNode is one module function in the static call graph.
type funcNode struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	pkg     *Package
	callees []*types.Func
}

// callGraph is the static, intra-module call graph: edges follow direct
// function and method calls whose callee the type checker resolves to a
// concrete *types.Func. Calls through interface values or function-typed
// variables have no static callee and carry no edge — a deliberate
// approximation (the protocol guards and actions in this repository call
// concrete methods only; DESIGN.md §7 records the limitation).
type callGraph struct {
	nodes map[*types.Func]*funcNode
}

// buildCallGraph indexes every declared function body in the program.
func buildCallGraph(prog *Program) *callGraph {
	cg := &callGraph{nodes: make(map[*types.Func]*funcNode)}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &funcNode{fn: fn, decl: fd, pkg: pkg}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := calleeOf(pkg.Info, call); callee != nil {
						node.callees = append(node.callees, callee)
					}
					return true
				})
				cg.nodes[fn] = node
			}
		}
	}
	return cg
}

// calleeOf resolves a call expression's static callee, or nil for
// builtins, conversions, and dynamic calls.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Qualified call: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// reachable returns every module function reachable from roots along
// static call edges, roots included (only roots with bodies appear).
func (cg *callGraph) reachable(roots []*types.Func) []*funcNode {
	seen := make(map[*types.Func]bool)
	var out []*funcNode
	var stack []*types.Func
	stack = append(stack, roots...)
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		node := cg.nodes[fn]
		if node == nil {
			continue // no body in the module (stdlib, interface method)
		}
		out = append(out, node)
		stack = append(stack, node.callees...)
	}
	return out
}
