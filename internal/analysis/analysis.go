package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"snappif/internal/analysis/dataflow"
)

// A Finding is one analyzer diagnostic.
type Finding struct {
	// Analyzer names the rule that fired.
	Analyzer string `json:"analyzer"`
	// File is the position's file path (module-relative when possible).
	File string `json:"file"`
	// Line and Col locate the offending node, 1-based.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the violation.
	Message string `json:"message"`
	// Severity is "" for an error (fails the build) or "warning" for
	// advisory findings (radiusbound's over-declared radius): printed and
	// exported, but never failing the run.
	Severity string `json:"severity,omitempty"`
}

// String renders the vet-style "file:line:col: [analyzer] message" line.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Key is the finding's line-number-free identity used by the baseline
// file, stable across unrelated edits to the same file.
func (f Finding) Key() string {
	return fmt.Sprintf("%s\t%s\t%s", f.File, f.Analyzer, f.Message)
}

// An Analyzer is one whole-program rule.
type Analyzer struct {
	// Name is the short rule identifier printed in findings.
	Name string
	// Doc is the one-line description shown by `snapvet -list`.
	Doc string
	// Run reports every violation through pass.Report.
	Run func(pass *Pass)
}

// Analyzers returns the seven snapvet rules in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{guardpure, writelocal, detrange, hotalloc, radiusbound, sharddisjoint, obspure}
}

// Pass hands one analyzer the loaded program and its reporting sink.
type Pass struct {
	// Prog is the loaded module.
	Prog *Program

	ann      *annotations
	analyzer *Analyzer
	findings *[]Finding
	eng      *dataflow.Engine
	st       *simTypes
	stDone   bool
}

// Report records a finding at pos unless a `//snapvet:ok` annotation on
// the same or the preceding line suppresses it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(pos, "", format, args...)
}

// Warn records an advisory finding: printed and exported, never failing
// the run.
func (p *Pass) Warn(pos token.Pos, format string, args ...any) {
	p.report(pos, "warning", format, args...)
}

func (p *Pass) report(pos token.Pos, severity, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	if p.ann.suppressed(position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		File:     p.relFile(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Severity: severity,
	})
}

// suppressedAt reports whether pos carries a `//snapvet:ok` suppression,
// for analyzers that must treat annotated sites as vouched-for rather
// than merely unreported (radiusbound, hotalloc's transitive audit).
func (p *Pass) suppressedAt(pos token.Pos) bool {
	return p.ann.suppressed(p.Prog.Fset.Position(pos))
}

// relFile makes file paths module-relative so findings and baselines are
// machine-independent.
func (p *Pass) relFile(file string) string {
	if p.Prog.ModuleDir == "" {
		return file
	}
	if rel, err := filepath.Rel(p.Prog.ModuleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

// simTypes returns the model-type index, resolved on first use (nil when
// the module has no internal/sim).
func (p *Pass) simTypes() *simTypes {
	if !p.stDone {
		p.st = lookupSimTypes(p.Prog)
		p.stDone = true
	}
	return p.st
}

// engine returns the shared interprocedural dataflow engine, built on
// first use over every loaded package (fixture packages appended by
// RunPackage included). The simTypes index doubles as the engine's model;
// a nil *simTypes is a valid dataflow.Model that matches nothing.
func (p *Pass) engine() *dataflow.Engine {
	if p.eng == nil {
		pkgs := make([]*dataflow.Pkg, len(p.Prog.Packages))
		for i, pkg := range p.Prog.Packages {
			pkgs[i] = &dataflow.Pkg{Path: pkg.Path, Files: pkg.Files, Types: pkg.Pkg, Info: pkg.Info}
		}
		p.eng = dataflow.NewEngine(pkgs, p.simTypes())
	}
	return p.eng
}

// Run executes the given analyzers (all four when nil) over prog and
// returns the surviving findings sorted by position, including the
// annotation-hygiene findings (a `//snapvet:ok` without a reason is
// itself an error: the tree must carry zero unexplained suppressions).
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	if analyzers == nil {
		analyzers = Analyzers()
	}
	ann := collectAnnotations(prog)
	var findings []Finding
	pass := &Pass{Prog: prog, ann: ann, findings: &findings}
	for _, a := range analyzers {
		pass.analyzer = a
		a.Run(pass)
	}
	findings = append(findings, ann.hygiene(pass)...)
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		if findings[i].Line != findings[j].Line {
			return findings[i].Line < findings[j].Line
		}
		if findings[i].Col != findings[j].Col {
			return findings[i].Col < findings[j].Col
		}
		return findings[i].Message < findings[j].Message
	})
	// Test variants re-analyze base declarations in a fresh universe;
	// identical findings (same position, analyzer, and message) collapse
	// to one.
	out := findings[:0]
	for i, f := range findings {
		if i > 0 && f == findings[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// RunPackage is Run restricted to one package (the testdata harness):
// program-wide analyzers still see prog, but only findings positioned in
// pkg's files survive.
func RunPackage(prog *Program, pkg *Package, analyzers []*Analyzer) []Finding {
	saved := prog.Packages
	prog.Packages = append(append([]*Package(nil), saved...), pkg)
	defer func() { prog.Packages = saved }()
	all := Run(prog, analyzers)
	var out []Finding
	dirs := map[string]bool{filepath.ToSlash(pkg.Dir): true}
	for _, f := range all {
		abs := f.File
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(prog.ModuleDir, abs)
		}
		if dirs[filepath.ToSlash(filepath.Dir(abs))] {
			out = append(out, f)
		}
	}
	return out
}

// okMark is one `//snapvet:ok <reason>` suppression.
type okMark struct {
	reason string
	pos    token.Pos
}

// annotations indexes the tree's snapvet directives.
type annotations struct {
	// ok maps filename -> line -> suppression.
	ok map[string]map[int]*okMark
	// hotpath holds the functions annotated `//snapvet:hotpath`.
	hotpath map[*ast.FuncDecl]bool
	// coldpath holds the functions annotated `//snapvet:coldpath <reason>`:
	// callees hotalloc's transitive audit must not charge against their
	// hot-path callers (panic formatting, one-time growth). The reason is
	// mandatory, like snapvet:ok's.
	coldpath map[*ast.FuncDecl]*okMark
	// nilsafe holds the type names annotated `//snapvet:nilsafe`: obspure
	// proves their exported pointer-receiver methods' nil-receiver paths
	// effect- and allocation-free.
	nilsafe map[*ast.TypeSpec]bool
	// deterministic holds packages opting into detrange via a
	// `//snapvet:deterministic` file directive.
	deterministic map[string]bool
	// shardcheck holds packages opting into sharddisjoint via a
	// `//snapvet:shardcheck` file directive (internal/flat needs no
	// opt-in; the fixture packages do).
	shardcheck map[string]bool
}

// The recognized comment directives.
const (
	okDirective       = "//snapvet:ok"
	hotpathDirective  = "//snapvet:hotpath"
	coldpathDirective = "//snapvet:coldpath"
	nilsafeDirective  = "//snapvet:nilsafe"
	detPkgDirective   = "//snapvet:deterministic"
	shardPkgDirective = "//snapvet:shardcheck"
)

// collectAnnotations scans every file's comments once.
func collectAnnotations(prog *Program) *annotations {
	ann := &annotations{
		ok:            make(map[string]map[int]*okMark),
		hotpath:       make(map[*ast.FuncDecl]bool),
		coldpath:      make(map[*ast.FuncDecl]*okMark),
		nilsafe:       make(map[*ast.TypeSpec]bool),
		deterministic: make(map[string]bool),
		shardcheck:    make(map[string]bool),
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			fileName := prog.Fset.Position(file.Pos()).Filename
			hotLines := make(map[int]bool)
			coldLines := make(map[int]*okMark)
			nilsafeLines := make(map[int]bool)
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					line := prog.Fset.Position(c.Pos()).Line
					switch {
					case strings.HasPrefix(text, okDirective):
						reason := strings.TrimSpace(strings.TrimPrefix(text, okDirective))
						marks := ann.ok[fileName]
						if marks == nil {
							marks = make(map[int]*okMark)
							ann.ok[fileName] = marks
						}
						marks[line] = &okMark{reason: reason, pos: c.Pos()}
					case strings.HasPrefix(text, hotpathDirective):
						hotLines[line] = true
					case strings.HasPrefix(text, coldpathDirective):
						reason := strings.TrimSpace(strings.TrimPrefix(text, coldpathDirective))
						coldLines[line] = &okMark{reason: reason, pos: c.Pos()}
					case strings.HasPrefix(text, nilsafeDirective):
						nilsafeLines[line] = true
					case strings.HasPrefix(text, detPkgDirective):
						ann.deterministic[pkg.Path] = true
					case strings.HasPrefix(text, shardPkgDirective):
						ann.shardcheck[pkg.Path] = true
					}
				}
			}
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Doc != nil {
						for _, c := range d.Doc.List {
							text := strings.TrimSpace(c.Text)
							if strings.HasPrefix(text, coldpathDirective) {
								ann.coldpath[d] = &okMark{
									reason: strings.TrimSpace(strings.TrimPrefix(text, coldpathDirective)),
									pos:    c.Pos(),
								}
							} else if strings.HasPrefix(text, hotpathDirective) {
								ann.hotpath[d] = true
							}
						}
					}
					// A bare directive line immediately above the
					// declaration also counts (doc comment or not).
					declLine := prog.Fset.Position(d.Pos()).Line
					if hotLines[declLine-1] {
						ann.hotpath[d] = true
					}
					if m := coldLines[declLine-1]; m != nil {
						ann.coldpath[d] = m
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						marked := false
						for _, doc := range []*ast.CommentGroup{d.Doc, ts.Doc} {
							if doc == nil {
								continue
							}
							for _, c := range doc.List {
								if strings.HasPrefix(strings.TrimSpace(c.Text), nilsafeDirective) {
									marked = true
								}
							}
						}
						declLine := prog.Fset.Position(ts.Pos()).Line
						if nilsafeLines[declLine-1] {
							marked = true
						}
						if marked {
							ann.nilsafe[ts] = true
						}
					}
				}
			}
		}
	}
	return ann
}

// suppressed reports whether a finding at position is covered by an ok
// mark on the same or the immediately preceding line.
func (ann *annotations) suppressed(position token.Position) bool {
	marks := ann.ok[position.Filename]
	if marks == nil {
		return false
	}
	return marks[position.Line] != nil || marks[position.Line-1] != nil
}

// hygiene reports every `//snapvet:ok` or `//snapvet:coldpath` carrying
// no reason: suppressions must explain themselves.
func (ann *annotations) hygiene(pass *Pass) []Finding {
	var out []Finding
	for file, marks := range ann.ok {
		for line, m := range marks {
			if m.reason != "" {
				continue
			}
			position := pass.Prog.Fset.Position(m.pos)
			out = append(out, Finding{
				Analyzer: "annotation",
				File:     pass.relFile(file),
				Line:     line,
				Col:      position.Column,
				Message:  "snapvet:ok requires a reason (\"//snapvet:ok <why this is safe>\")",
			})
		}
	}
	for _, m := range ann.coldpath {
		if m.reason != "" {
			continue
		}
		position := pass.Prog.Fset.Position(m.pos)
		out = append(out, Finding{
			Analyzer: "annotation",
			File:     pass.relFile(position.Filename),
			Line:     position.Line,
			Col:      position.Column,
			Message:  "snapvet:coldpath requires a reason (\"//snapvet:coldpath <why this never runs per step>\")",
		})
	}
	return out
}

// ReadBaseline loads the grandfathered finding keys from path (one
// Finding.Key per line, '#' comments and blank lines ignored). A missing
// file is an empty baseline.
func ReadBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]bool{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line] = true
	}
	return base, sc.Err()
}

// WriteBaseline writes the findings' keys to path in a stable order.
func WriteBaseline(path string, findings []Finding) error {
	keys := make([]string, 0, len(findings))
	seen := make(map[string]bool)
	for _, f := range findings {
		k := f.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# snapvet baseline: grandfathered findings, one Finding.Key per line.\n")
	b.WriteString("# Regenerate with `go run ./cmd/snapvet -write-baseline ./...`.\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// Filter splits findings into new ones and baselined ones.
// UpdateBaseline regenerates the baseline file at path from the current
// findings and reports the delta against whatever the file held before:
// keys newly grandfathered, keys whose findings no longer exist, and keys
// carried over. The write goes through WriteBaseline, so updating twice
// from the same tree is byte-for-byte stable.
func UpdateBaseline(path string, findings []Finding) (added, removed, kept int, err error) {
	old, err := ReadBaseline(path)
	if err != nil {
		return 0, 0, 0, err
	}
	now := make(map[string]bool, len(findings))
	for _, f := range findings {
		now[f.Key()] = true
	}
	for k := range now {
		if old[k] {
			kept++
		} else {
			added++
		}
	}
	for k := range old {
		if !now[k] {
			removed++
		}
	}
	return added, removed, kept, WriteBaseline(path, findings)
}

func Filter(findings []Finding, baseline map[string]bool) (fresh, old []Finding) {
	for _, f := range findings {
		if baseline[f.Key()] {
			old = append(old, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	return fresh, old
}
