package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Finding is one analyzer diagnostic.
type Finding struct {
	// Analyzer names the rule that fired.
	Analyzer string `json:"analyzer"`
	// File is the position's file path (module-relative when possible).
	File string `json:"file"`
	// Line and Col locate the offending node, 1-based.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the violation.
	Message string `json:"message"`
}

// String renders the vet-style "file:line:col: [analyzer] message" line.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Key is the finding's line-number-free identity used by the baseline
// file, stable across unrelated edits to the same file.
func (f Finding) Key() string {
	return fmt.Sprintf("%s\t%s\t%s", f.File, f.Analyzer, f.Message)
}

// An Analyzer is one whole-program rule.
type Analyzer struct {
	// Name is the short rule identifier printed in findings.
	Name string
	// Doc is the one-line description shown by `snapvet -list`.
	Doc string
	// Run reports every violation through pass.Report.
	Run func(pass *Pass)
}

// Analyzers returns the four snapvet rules in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{guardpure, writelocal, detrange, hotalloc}
}

// Pass hands one analyzer the loaded program and its reporting sink.
type Pass struct {
	// Prog is the loaded module.
	Prog *Program

	ann      *annotations
	analyzer *Analyzer
	findings *[]Finding
	cg       *callGraph
}

// Report records a finding at pos unless a `//snapvet:ok` annotation on
// the same or the preceding line suppresses it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	if p.ann.suppressed(position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		File:     p.relFile(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// relFile makes file paths module-relative so findings and baselines are
// machine-independent.
func (p *Pass) relFile(file string) string {
	if p.Prog.ModuleDir == "" {
		return file
	}
	if rel, err := filepath.Rel(p.Prog.ModuleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

// callGraph returns the shared static call graph, built on first use.
func (p *Pass) callGraph() *callGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p.Prog)
	}
	return p.cg
}

// Run executes the given analyzers (all four when nil) over prog and
// returns the surviving findings sorted by position, including the
// annotation-hygiene findings (a `//snapvet:ok` without a reason is
// itself an error: the tree must carry zero unexplained suppressions).
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	if analyzers == nil {
		analyzers = Analyzers()
	}
	ann := collectAnnotations(prog)
	var findings []Finding
	pass := &Pass{Prog: prog, ann: ann, findings: &findings}
	for _, a := range analyzers {
		pass.analyzer = a
		a.Run(pass)
	}
	findings = append(findings, ann.hygiene(pass)...)
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		if findings[i].Line != findings[j].Line {
			return findings[i].Line < findings[j].Line
		}
		if findings[i].Col != findings[j].Col {
			return findings[i].Col < findings[j].Col
		}
		return findings[i].Message < findings[j].Message
	})
	return findings
}

// RunPackage is Run restricted to one package (the testdata harness):
// program-wide analyzers still see prog, but only findings positioned in
// pkg's files survive.
func RunPackage(prog *Program, pkg *Package, analyzers []*Analyzer) []Finding {
	saved := prog.Packages
	prog.Packages = append(append([]*Package(nil), saved...), pkg)
	defer func() { prog.Packages = saved }()
	all := Run(prog, analyzers)
	var out []Finding
	dirs := map[string]bool{filepath.ToSlash(pkg.Dir): true}
	for _, f := range all {
		abs := f.File
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(prog.ModuleDir, abs)
		}
		if dirs[filepath.ToSlash(filepath.Dir(abs))] {
			out = append(out, f)
		}
	}
	return out
}

// okMark is one `//snapvet:ok <reason>` suppression.
type okMark struct {
	reason string
	pos    token.Pos
}

// annotations indexes the tree's snapvet directives.
type annotations struct {
	// ok maps filename -> line -> suppression.
	ok map[string]map[int]*okMark
	// hotpath holds the functions annotated `//snapvet:hotpath`.
	hotpath map[*ast.FuncDecl]bool
	// deterministic holds packages opting into detrange via a
	// `//snapvet:deterministic` file directive.
	deterministic map[string]bool
}

// The recognized comment directives.
const (
	okDirective      = "//snapvet:ok"
	hotpathDirective = "//snapvet:hotpath"
	detPkgDirective  = "//snapvet:deterministic"
)

// collectAnnotations scans every file's comments once.
func collectAnnotations(prog *Program) *annotations {
	ann := &annotations{
		ok:            make(map[string]map[int]*okMark),
		hotpath:       make(map[*ast.FuncDecl]bool),
		deterministic: make(map[string]bool),
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			fileName := prog.Fset.Position(file.Pos()).Filename
			hotLines := make(map[int]bool)
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					switch {
					case strings.HasPrefix(text, okDirective):
						reason := strings.TrimSpace(strings.TrimPrefix(text, okDirective))
						line := prog.Fset.Position(c.Pos()).Line
						marks := ann.ok[fileName]
						if marks == nil {
							marks = make(map[int]*okMark)
							ann.ok[fileName] = marks
						}
						marks[line] = &okMark{reason: reason, pos: c.Pos()}
					case strings.HasPrefix(text, hotpathDirective):
						hotLines[prog.Fset.Position(c.Pos()).Line] = true
					case strings.HasPrefix(text, detPkgDirective):
						ann.deterministic[pkg.Path] = true
					}
				}
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fd.Doc != nil {
					for _, c := range fd.Doc.List {
						if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathDirective) {
							ann.hotpath[fd] = true
						}
					}
				}
				// A bare directive line immediately above the declaration
				// also counts (doc comment or not).
				declLine := prog.Fset.Position(fd.Pos()).Line
				if hotLines[declLine-1] {
					ann.hotpath[fd] = true
				}
			}
		}
	}
	return ann
}

// suppressed reports whether a finding at position is covered by an ok
// mark on the same or the immediately preceding line.
func (ann *annotations) suppressed(position token.Position) bool {
	marks := ann.ok[position.Filename]
	if marks == nil {
		return false
	}
	return marks[position.Line] != nil || marks[position.Line-1] != nil
}

// hygiene reports every `//snapvet:ok` carrying no reason: suppressions
// must explain themselves.
func (ann *annotations) hygiene(pass *Pass) []Finding {
	var out []Finding
	for file, marks := range ann.ok {
		for line, m := range marks {
			if m.reason != "" {
				continue
			}
			position := pass.Prog.Fset.Position(m.pos)
			out = append(out, Finding{
				Analyzer: "annotation",
				File:     pass.relFile(file),
				Line:     line,
				Col:      position.Column,
				Message:  "snapvet:ok requires a reason (\"//snapvet:ok <why this is safe>\")",
			})
		}
	}
	return out
}

// ReadBaseline loads the grandfathered finding keys from path (one
// Finding.Key per line, '#' comments and blank lines ignored). A missing
// file is an empty baseline.
func ReadBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]bool{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line] = true
	}
	return base, sc.Err()
}

// WriteBaseline writes the findings' keys to path in a stable order.
func WriteBaseline(path string, findings []Finding) error {
	keys := make([]string, 0, len(findings))
	seen := make(map[string]bool)
	for _, f := range findings {
		k := f.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# snapvet baseline: grandfathered findings, one Finding.Key per line.\n")
	b.WriteString("# Regenerate with `go run ./cmd/snapvet -write-baseline ./...`.\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// Filter splits findings into new ones and baselined ones.
func Filter(findings []Finding, baseline map[string]bool) (fresh, old []Finding) {
	for _, f := range findings {
		if baseline[f.Key()] {
			old = append(old, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	return fresh, old
}
