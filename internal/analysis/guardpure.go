package analysis

import (
	"go/types"

	"snappif/internal/analysis/dataflow"
)

// guardpure enforces the paper's guard semantics (Section 2): a guard is
// a boolean predicate over the executing processor's own and its
// neighbors' registers. Every function statically reachable from the
// Enabled method of a sim.Protocol implementer must therefore be pure: no
// writes to a sim.Configuration, a shared processor-state box, or
// package-level state, no channel or map mutation, and no I/O or
// clock/global-randomness calls. The reachability and effect
// classification come from the dataflow summary engine, so helper chains
// of any depth are covered.
var guardpure = &Analyzer{
	Name: "guardpure",
	Doc:  "guard-reachable code must not write shared state, mutate maps/channels, or perform I/O",
	Run:  runGuardpure,
}

func runGuardpure(pass *Pass) {
	st := pass.simTypes()
	if st == nil {
		return
	}
	eng := pass.engine()
	var roots []*types.Func
	for _, named := range protocolImplementers(pass.Prog, st) {
		if fn := methodOf(named, "Enabled"); fn != nil {
			roots = append(roots, fn)
		}
	}
	for _, fi := range eng.Reachable(roots) {
		sum := eng.Summary(fi.Fn)
		for _, s := range sum.Effects {
			reportImpurity(pass, "guard", fi.Fn.Name(), s)
		}
	}
}

// reportImpurity renders one effect site as a purity violation. kind
// names the root family ("guard") in messages.
func reportImpurity(pass *Pass, kind, fname string, s dataflow.Site) {
	switch s.Kind {
	case dataflow.EffSend:
		pass.Report(s.Pos, "%s-reachable %s sends on a channel; guards are pure predicates over registers", kind, fname)
	case dataflow.EffDelete:
		pass.Report(s.Pos, "%s-reachable %s deletes from a map; guards are pure predicates over registers", kind, fname)
	case dataflow.EffClose:
		pass.Report(s.Pos, "%s-reachable %s closes a channel; guards are pure predicates over registers", kind, fname)
	case dataflow.EffPrint:
		pass.Report(s.Pos, "%s-reachable %s calls %s; guards must not perform I/O", kind, fname, s.Detail)
	case dataflow.EffIO, dataflow.EffClock, dataflow.EffRand:
		why := map[dataflow.EffectKind]string{
			dataflow.EffIO:    "I/O from a guard",
			dataflow.EffClock: "clock access from a guard",
			dataflow.EffRand:  "global randomness from a guard",
		}[s.Kind]
		pass.Report(s.Pos, "%s-reachable %s calls %s.%s (%s)", kind, fname, dataflow.PkgPath(s.Callee), s.Callee.Name(), why)
	case dataflow.EffWriteConfig:
		pass.Report(s.Pos, "%s-reachable %s writes the configuration; the model's guards only read registers", kind, fname)
	case dataflow.EffWriteBox:
		pass.Report(s.Pos, "%s-reachable %s writes a processor-state box; the model's guards only read registers", kind, fname)
	case dataflow.EffWriteMap:
		pass.Report(s.Pos, "%s-reachable %s stores into a map; guards are pure predicates over registers", kind, fname)
	case dataflow.EffWriteGlobal:
		pass.Report(s.Pos, "%s-reachable %s writes package-level state; guards are pure predicates over registers", kind, fname)
	}
}
