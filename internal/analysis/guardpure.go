package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// guardpure enforces the paper's guard semantics (Section 2): a guard is
// a boolean predicate over the executing processor's own and its
// neighbors' registers. Every function statically reachable from the
// Enabled method of a sim.Protocol implementer must therefore be pure: no
// writes to a sim.Configuration or a shared processor-state box, no
// channel or map mutation, and no I/O or clock/global-randomness calls.
var guardpure = &Analyzer{
	Name: "guardpure",
	Doc:  "guard-reachable code must not write shared state, mutate maps/channels, or perform I/O",
	Run:  runGuardpure,
}

func runGuardpure(pass *Pass) {
	st := lookupSimTypes(pass.Prog)
	if st == nil {
		return
	}
	cg := pass.callGraph()
	var roots []*types.Func
	for _, named := range protocolImplementers(pass.Prog, st) {
		if fn := methodOf(named, "Enabled"); fn != nil {
			roots = append(roots, fn)
		}
	}
	for _, node := range cg.reachable(roots) {
		checkPureBody(pass, st, node, "guard")
	}
}

// checkPureBody reports every impurity in one guard-reachable function.
// kind names the root family ("guard") in messages.
func checkPureBody(pass *Pass, st *simTypes, node *funcNode, kind string) {
	info := node.pkg.Info
	fname := node.fn.Name()
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			pass.Report(x.Pos(), "%s-reachable %s sends on a channel; guards are pure predicates over registers", kind, fname)
		case *ast.CallExpr:
			switch builtinName(info, x) {
			case "delete":
				pass.Report(x.Pos(), "%s-reachable %s deletes from a map; guards are pure predicates over registers", kind, fname)
			case "close":
				pass.Report(x.Pos(), "%s-reachable %s closes a channel; guards are pure predicates over registers", kind, fname)
			case "print", "println":
				pass.Report(x.Pos(), "%s-reachable %s calls %s; guards must not perform I/O", kind, fname, builtinName(info, x))
			}
			if callee := calleeOf(info, x); callee != nil {
				if why := impureCall(callee); why != "" {
					pass.Report(x.Pos(), "%s-reachable %s calls %s.%s (%s)", kind, fname, calleePackagePath(callee), callee.Name(), why)
				}
			}
		default:
			writes(n, func(lhs ast.Expr, pos token.Pos) {
				switch k, _ := classifyWrite(info, st, lhs); k {
				case writeConfig:
					pass.Report(pos, "%s-reachable %s writes the configuration; the model's guards only read registers", kind, fname)
				case writeStateBox:
					pass.Report(pos, "%s-reachable %s writes a processor-state box; the model's guards only read registers", kind, fname)
				case writeMap:
					pass.Report(pos, "%s-reachable %s stores into a map; guards are pure predicates over registers", kind, fname)
				}
			})
		}
		return true
	})
}

// impureCall reports why calling fn from guard-reachable code breaks
// purity, or "" when the call is acceptable.
func impureCall(fn *types.Func) string {
	pkg := calleePackagePath(fn)
	name := fn.Name()
	switch pkg {
	case "os", "io", "bufio", "syscall", "log":
		return "I/O from a guard"
	case "fmt":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || name == "Scan" || strings.HasPrefix(name, "Scan") || strings.HasPrefix(name, "Fscan") {
			return "I/O from a guard"
		}
	case "time":
		switch name {
		case "Now", "Since", "Until", "Sleep", "Tick", "After", "AfterFunc", "NewTimer", "NewTicker":
			return "clock access from a guard"
		}
	case "math/rand", "math/rand/v2":
		if globalRandFunc(fn) {
			return "global randomness from a guard"
		}
	}
	if strings.HasPrefix(pkg, "net") {
		return "I/O from a guard"
	}
	return ""
}

// globalRandFunc reports whether fn is a package-level math/rand function
// drawing from the process-global source (methods on *rand.Rand and the
// seeded constructors are deterministic and allowed).
func globalRandFunc(fn *types.Func) bool {
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}
