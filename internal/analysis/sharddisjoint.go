package analysis

import (
	"go/ast"
	"strings"

	"snappif/internal/analysis/dataflow"
)

// sharddisjoint proves the flat engine's sweep claim (sweep.go): workers
// only write slots owned by their shard's items, so the parallel sweep is
// race-free by structure rather than by locking. Every goroutine launched
// with a static callee in internal/flat (or a package opting in with a
// `//snapvet:shardcheck` file directive) is treated as a sweep worker and
// its reachable code checked against the engine's shard-derivation
// discipline: shared memory may be written only through indices derived
// from the worker's arguments or its job-channel receives, or into
// per-worker locals. sync and sync/atomic calls are sanctioned — they
// order their own memory.
var sharddisjoint = &Analyzer{
	Name: "sharddisjoint",
	Doc:  "sweep workers write only shard-derived slots or per-worker scratch",
	Run:  runSharddisjoint,
}

func runSharddisjoint(pass *Pass) {
	eng := pass.engine()
	for _, pkg := range pass.Prog.Packages {
		rel := pass.Prog.RelPath(pkg.Path)
		if rel != "internal/flat" && !strings.HasPrefix(rel, "internal/flat/") && !pass.ann.shardcheck[pkg.Path] {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				callee := dataflow.CalleeOf(pkg.Info, g.Call)
				if callee == nil {
					return true // a func-literal goroutine is not the sweep pattern
				}
				for _, v := range eng.ShardCheck(callee) {
					reportShard(pass, v)
				}
				return true
			})
		}
	}
}

// reportShard renders one escape from the disjoint-slot discipline.
func reportShard(pass *Pass, v dataflow.ShardViolation) {
	fname := v.Fn.Name()
	switch v.Kind {
	case dataflow.ShardFieldWrite:
		pass.Report(v.Pos, "sweep-worker-reachable %s writes a shared field; workers may write only their shard's disjoint slots — restructure or annotate //snapvet:ok <reason>", fname)
	case dataflow.ShardIndexWrite:
		pass.Report(v.Pos, "sweep-worker-reachable %s writes an element at a non-shard-derived index; disjointness across workers cannot be proven", fname)
	case dataflow.ShardMapWrite:
		pass.Report(v.Pos, "sweep-worker-reachable %s writes a map; map writes race across workers", fname)
	case dataflow.ShardGlobalWrite:
		pass.Report(v.Pos, "sweep-worker-reachable %s writes package-level state, which every worker shares", fname)
	case dataflow.ShardPtrWrite:
		pass.Report(v.Pos, "sweep-worker-reachable %s stores through a pointer not proven to target its own shard's slot", fname)
	case dataflow.ShardDynamicCall:
		pass.Report(v.Pos, "sweep-worker-reachable %s calls through a function value; shard-disjointness cannot be verified past a dynamic call — devirtualize or annotate //snapvet:ok <reason>", fname)
	case dataflow.ShardSend:
		pass.Report(v.Pos, "sweep-worker-reachable %s sends on a channel; workers hand results back only through their disjoint slots and the WaitGroup", fname)
	}
}
