package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"snappif/internal/analysis/dataflow"
)

// simTypes locates the types of the paper's computational model in the
// loaded program. Test variants re-type-check the same source into fresh
// universes, so each model type may have several incarnations; every
// lookup here is a slice and every predicate answers "in any universe".
type simTypes struct {
	protocols []*types.Interface // sim.Protocol per universe
	states    []*types.Interface // sim.State per universe
	locals    []*types.Interface // sim.LocalProtocol per universe
	radii     []*types.Interface // sim.RadiusProtocol per universe
	configs   []*types.Named     // sim.Configuration per universe
	flats     []*types.Named     // flat.Config per universe
}

// lookupSimTypes returns nil when the module has no internal/sim package
// (then the model-aware analyzers have nothing to check).
func lookupSimTypes(prog *Program) *simTypes {
	st := &simTypes{}
	for _, pkg := range prog.Packages {
		switch prog.RelPath(pkg.Path) {
		case "internal/sim":
			scope := pkg.Pkg.Scope()
			if o := scope.Lookup("Protocol"); o != nil {
				if iface, ok := o.Type().Underlying().(*types.Interface); ok {
					st.protocols = append(st.protocols, iface)
				}
			}
			if o := scope.Lookup("State"); o != nil {
				if iface, ok := o.Type().Underlying().(*types.Interface); ok {
					st.states = append(st.states, iface)
				}
			}
			if o := scope.Lookup("LocalProtocol"); o != nil {
				if iface, ok := o.Type().Underlying().(*types.Interface); ok {
					st.locals = append(st.locals, iface)
				}
			}
			if o := scope.Lookup("RadiusProtocol"); o != nil {
				if iface, ok := o.Type().Underlying().(*types.Interface); ok {
					st.radii = append(st.radii, iface)
				}
			}
			if o := scope.Lookup("Configuration"); o != nil {
				if named, ok := o.Type().(*types.Named); ok {
					st.configs = append(st.configs, named)
				}
			}
		case "internal/flat":
			if o := pkg.Pkg.Scope().Lookup("Config"); o != nil {
				if named, ok := o.Type().(*types.Named); ok {
					st.flats = append(st.flats, named)
				}
			}
		}
	}
	if len(st.protocols) == 0 || len(st.states) == 0 || len(st.configs) == 0 {
		return nil
	}
	return st
}

// implementsProtocol reports whether T (or *T) satisfies sim.Protocol in
// T's own universe.
func (st *simTypes) implementsProtocol(t types.Type) bool {
	if st == nil {
		return false
	}
	for _, p := range st.protocols {
		if types.Implements(t, p) || types.Implements(types.NewPointer(t), p) {
			return true
		}
	}
	return false
}

// implementsLocal reports whether T (or *T) claims sim.LocalProtocol —
// the radius contract's entry condition.
func (st *simTypes) implementsLocal(t types.Type) bool {
	if st == nil {
		return false
	}
	for _, p := range st.locals {
		if types.Implements(t, p) || types.Implements(types.NewPointer(t), p) {
			return true
		}
	}
	return false
}

// implementsRadius reports whether T (or *T) additionally declares a
// DirtyRadius via sim.RadiusProtocol.
func (st *simTypes) implementsRadius(t types.Type) bool {
	if st == nil {
		return false
	}
	for _, p := range st.radii {
		if types.Implements(t, p) || types.Implements(types.NewPointer(t), p) {
			return true
		}
	}
	return false
}

// IsConfig reports whether t is a global-configuration type —
// sim.Configuration or the flat engine's Config — possibly behind a
// pointer. Implements dataflow.Model.
func (st *simTypes) IsConfig(t types.Type) bool {
	if st == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for _, c := range st.configs {
		if named.Origin() == c.Origin() {
			return true
		}
	}
	for _, c := range st.flats {
		if named.Origin() == c.Origin() {
			return true
		}
	}
	return false
}

// IsStateBox reports whether t is a shared processor-state box: a pointer
// whose type implements sim.State, or the sim.State interface itself.
// Implements dataflow.Model.
func (st *simTypes) IsStateBox(t types.Type) bool {
	if st == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Pointer); ok {
		for _, s := range st.states {
			if types.Implements(t, s) {
				return true
			}
		}
		return false
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for _, s := range st.states {
			if types.Implements(iface, s) || types.Identical(iface, s) {
				return true
			}
		}
	}
	return false
}

// flatStateColumns are flat.Config's per-processor register columns, the
// SoA mirror of core.State (flat.go). Indexing one reads processor state;
// "par" yields the indexed processor's parent pointer. The CSR topology
// fields (off, adj) and the graph handle are deliberately absent: reading
// topology is not reading state.
var flatStateColumns = map[string]bool{
	"pif": true, "par": true, "level": true, "count": true,
	"fok": true, "msg": true, "val": true, "agg": true,
}

// stateColumn reports whether sel selects a per-processor state column
// from a configuration value: sim's States slice or a flat register
// column. parent marks the column holding neighbor pointers.
func (st *simTypes) stateColumn(info *types.Info, sel *ast.SelectorExpr) (parent, ok bool) {
	if st == nil {
		return false, false
	}
	t := info.TypeOf(sel.X)
	if t == nil || !st.IsConfig(t) {
		return false, false
	}
	name := sel.Sel.Name
	if name == "States" || flatStateColumns[name] {
		return name == "par", true
	}
	return false, false
}

// StateIndex implements dataflow.Model: c.States[i] and flat column
// indexing c.pif[i] are processor-state reads keyed by i.
func (st *simTypes) StateIndex(info *types.Info, e ast.Expr) (idx ast.Expr, parent bool, ok bool) {
	if st == nil {
		return nil, false, false
	}
	ix, isIx := ast.Unparen(e).(*ast.IndexExpr)
	if !isIx {
		return nil, false, false
	}
	sel, isSel := ast.Unparen(ix.X).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	parent, ok = st.stateColumn(info, sel)
	if !ok {
		return nil, false, false
	}
	return ix.Index, parent, true
}

// IsNeighbors implements dataflow.Model: a callee returning the neighbor
// list of its single processor-index argument. Matched structurally
// (name + signature) so graph.Graph.Neighbors and flat.Config.neighbors
// qualify in every universe.
func (st *simTypes) IsNeighbors(callee *types.Func) bool {
	if st == nil {
		return false
	}
	if callee == nil {
		return false
	}
	switch callee.Name() {
	case "Neighbors", "neighbors":
	default:
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if !isIntegerType(sig.Params().At(0).Type()) {
		return false
	}
	sl, ok := sig.Results().At(0).Type().Underlying().(*types.Slice)
	return ok && isIntegerType(sl.Elem())
}

// IsParentField implements dataflow.Model: the Par field of a state value
// holds the processor's parent pointer — one neighbor hop.
func (st *simTypes) IsParentField(info *types.Info, sel *ast.SelectorExpr) bool {
	if st == nil {
		return false
	}
	if sel.Sel.Name != "Par" {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "State"
}

// IsStateColumn implements dataflow.Model: an entire per-processor column
// (ranging over it reads state at every processor).
func (st *simTypes) IsStateColumn(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	_, isCol := st.stateColumn(info, sel)
	return isCol
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// protocolImplementers yields every named type in the module that
// satisfies sim.Protocol, with its defining package. Test variants
// re-declare base types; the caller's findings deduplicate by position.
func protocolImplementers(prog *Program, st *simTypes) []*types.Named {
	var out []*types.Named
	for _, pkg := range prog.Packages {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			if st.implementsProtocol(named) {
				out = append(out, named)
			}
		}
	}
	return out
}

// methodOf resolves the named method on T or *T.
func methodOf(t *types.Named, name string) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), false, t.Obj().Pkg(), name)
	fn, _ := obj.(*types.Func)
	return fn
}

// moduleFunc reports whether fn is declared in this module (test variants
// included): the boundary for "we can see the body" decisions.
func moduleFunc(prog *Program, fn *types.Func) bool {
	path := dataflow.PkgPath(fn)
	return path == prog.ModulePath || strings.HasPrefix(path, prog.ModulePath+"/")
}
