package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// simTypes locates the types of the paper's computational model in the
// loaded program: the sim.Protocol and sim.State interfaces and the
// sim.Configuration struct. All four analyzers key off them.
type simTypes struct {
	protocol *types.Interface
	state    *types.Interface
	config   *types.Named
}

// lookupSimTypes returns nil when the module has no internal/sim package
// (then the model-aware analyzers have nothing to check).
func lookupSimTypes(prog *Program) *simTypes {
	pkg := prog.Lookup(prog.ModulePath + "/internal/sim")
	if pkg == nil {
		return nil
	}
	st := &simTypes{}
	if o := pkg.Pkg.Scope().Lookup("Protocol"); o != nil {
		if iface, ok := o.Type().Underlying().(*types.Interface); ok {
			st.protocol = iface
		}
	}
	if o := pkg.Pkg.Scope().Lookup("State"); o != nil {
		if iface, ok := o.Type().Underlying().(*types.Interface); ok {
			st.state = iface
		}
	}
	if o := pkg.Pkg.Scope().Lookup("Configuration"); o != nil {
		if named, ok := o.Type().(*types.Named); ok {
			st.config = named
		}
	}
	if st.protocol == nil || st.state == nil || st.config == nil {
		return nil
	}
	return st
}

// implementsProtocol reports whether T (or *T) satisfies sim.Protocol.
func (st *simTypes) implementsProtocol(t types.Type) bool {
	return types.Implements(t, st.protocol) || types.Implements(types.NewPointer(t), st.protocol)
}

// isConfiguration reports whether t is sim.Configuration or a pointer to
// it.
func (st *simTypes) isConfiguration(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Origin() == st.config.Origin()
}

// isStateBox reports whether t is a shared processor-state box: a pointer
// whose type implements sim.State, or the sim.State interface itself.
func (st *simTypes) isStateBox(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return types.Implements(t, st.state)
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		return types.Implements(iface, st.state) || types.Identical(iface, st.state)
	}
	return false
}

// protocolImplementers yields every named type in the module that
// satisfies sim.Protocol, with its defining package.
func protocolImplementers(prog *Program, st *simTypes) []*types.Named {
	var out []*types.Named
	for _, pkg := range prog.Packages {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			if st.implementsProtocol(named) {
				out = append(out, named)
			}
		}
	}
	return out
}

// methodOf resolves the named method on T or *T.
func methodOf(t *types.Named, name string) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), false, t.Obj().Pkg(), name)
	fn, _ := obj.(*types.Func)
	return fn
}

// writeKind classifies one assignment target.
type writeKind int

const (
	writeOther    writeKind = iota // plain local write, not model-relevant
	writeConfig                    // mutates a sim.Configuration
	writeStateBox                  // mutates a shared processor-state box
	writeMap                       // stores into a map
)

// classifyWrite walks the assignment target's access path outward-in and
// reports the most model-relevant memory it writes through, together with
// the path's root identifier (nil when the root is not a plain
// identifier). Rebinding a pointer variable (`p = q`) is not a write
// through it: only Selector/Index/Star steps dereference.
func classifyWrite(info *types.Info, st *simTypes, lhs ast.Expr) (writeKind, *ast.Ident) {
	kind := writeOther
	note := func(k writeKind) {
		// Config and state-box writes outrank map writes: the closer to
		// the shared-memory model, the more specific the message.
		if k == writeConfig || (k == writeStateBox && kind != writeConfig) || kind == writeOther {
			kind = k
		}
	}
	classifyBase := func(base ast.Expr, isIndex bool) {
		t := info.TypeOf(base)
		if t == nil {
			return
		}
		switch {
		case st != nil && st.isConfiguration(t):
			note(writeConfig)
		case st != nil && st.isStateBox(t):
			note(writeStateBox)
		case isIndex:
			if _, ok := t.Underlying().(*types.Map); ok {
				note(writeMap)
			}
		}
	}
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			classifyBase(x.X, false)
			e = x.X
		case *ast.IndexExpr:
			classifyBase(x.X, true)
			e = x.X
		case *ast.StarExpr:
			classifyBase(x.X, false)
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			root, _ := e.(*ast.Ident)
			return kind, root
		}
	}
}

// writes yields every (target, pos) a statement mutates: assignment
// left-hand sides (definitions excluded — they bind fresh variables) and
// increment/decrement targets.
func writes(n ast.Node, fn func(lhs ast.Expr, pos token.Pos)) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if s.Tok == token.DEFINE {
			return
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			fn(lhs, lhs.Pos())
		}
	case *ast.IncDecStmt:
		fn(s.X, s.X.Pos())
	}
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// calleePackagePath returns the import path of the called function's
// package ("" for builtins, locals without packages, and dynamic calls).
func calleePackagePath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
