package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The loaded module is shared across tests: loading type-checks every
// module package once (~the cost of go vet), and RunPackage's temporary
// append keeps testdata packages out of each other's way.
var (
	loadOnce sync.Once
	loaded   *Program
	loadErr  error

	loadTestsOnce sync.Once
	loadedTests   *Program
	loadTestsErr  error
)

func loadProg(t *testing.T) *Program {
	t.Helper()
	loadOnce.Do(func() { loaded, loadErr = Load("../..") })
	if loadErr != nil {
		t.Fatalf("Load: %v", loadErr)
	}
	return loaded
}

// loadTestProg loads the module with test variants: every *_test.go file
// (internal and external test packages) joins the program, re-type-checked
// per test-binary universe the way `go list -deps -test` reports them.
func loadTestProg(t *testing.T) *Program {
	t.Helper()
	loadTestsOnce.Do(func() { loadedTests, loadTestsErr = LoadTests("../..") })
	if loadTestsErr != nil {
		t.Fatalf("LoadTests: %v", loadTestsErr)
	}
	return loadedTests
}

// wantExp is one `// want "regexp"` expectation in a testdata file.
type wantExp struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// A want pattern is quoted with backticks (the usual, regexp-friendly
// form) or double quotes.
var quotedRE = regexp.MustCompile("`([^`]+)`|\"([^\"]+)\"")

// parseWants extracts the `// want "..."` expectations from a loaded
// package. A want comment holds one or more quoted regexps, each matching
// one finding reported on that line.
func parseWants(t *testing.T, prog *Program, pkg *Package) []*wantExp {
	t.Helper()
	var out []*wantExp
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				rel, err := filepath.Rel(prog.ModuleDir, pos.Filename)
				if err != nil {
					rel = pos.Filename
				}
				matches := quotedRE.FindAllStringSubmatch(c.Text[idx:], -1)
				if len(matches) == 0 {
					t.Errorf("%s:%d: want comment with no quoted regexp", rel, pos.Line)
					continue
				}
				for _, m := range matches {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", rel, pos.Line, pat, err)
						continue
					}
					out = append(out, &wantExp{file: filepath.ToSlash(rel), line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// runWantTest loads testdata/src/<name>, runs the analyzers over it, and
// checks the findings against the `// want` comments exactly: every
// finding needs a matching expectation on its line, and every expectation
// must be consumed.
func runWantTest(t *testing.T, name string, analyzers []*Analyzer) {
	prog := loadProg(t)
	dir := filepath.Join("testdata", "src", name)
	pkg, err := prog.LoadDir(dir, prog.ModulePath+"/internal/analysis/testdata/src/"+name)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	findings := RunPackage(prog, pkg, analyzers)
	wants := parseWants(t, prog, pkg)

	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

func TestGuardpure(t *testing.T)     { runWantTest(t, "guardpure", []*Analyzer{guardpure}) }
func TestWritelocal(t *testing.T)    { runWantTest(t, "writelocal", []*Analyzer{writelocal}) }
func TestDetrange(t *testing.T)      { runWantTest(t, "detrange", []*Analyzer{detrange}) }
func TestHotalloc(t *testing.T)      { runWantTest(t, "hotalloc", []*Analyzer{hotalloc}) }
func TestRadiusbound(t *testing.T)   { runWantTest(t, "radiusbound", []*Analyzer{radiusbound}) }
func TestSharddisjoint(t *testing.T) { runWantTest(t, "sharddisjoint", []*Analyzer{sharddisjoint}) }
func TestObspure(t *testing.T)       { runWantTest(t, "obspure", []*Analyzer{obspure}) }

// TestAnnotationHygiene checks that a `//snapvet:ok` without a reason is
// itself reported, even with no analyzer selected — suppressions must
// explain themselves.
func TestAnnotationHygiene(t *testing.T) {
	prog := loadProg(t)
	pkg, err := prog.LoadDir(filepath.Join("testdata", "src", "annotations"),
		prog.ModulePath+"/internal/analysis/testdata/src/annotations")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	findings := RunPackage(prog, pkg, []*Analyzer{})
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "annotation" || !strings.Contains(f.Message, "requires a reason") {
		t.Errorf("unexpected hygiene finding: %s", f)
	}
}

// TestTreeClean is the repo's own conformance gate in test form: the
// current tree — *_test.go files included — must be analyzer-clean without
// any baseline.
func TestTreeClean(t *testing.T) {
	prog := loadTestProg(t)
	findings := Run(prog, nil)
	for _, f := range findings {
		t.Errorf("tree not analyzer-clean: %s", f)
	}
}

// TestDetrangeTarget pins the engine-package gate: exact matches, nested
// subpackages, and the cmd/ tools are in; siblings with a shared prefix
// are out.
func TestDetrangeTarget(t *testing.T) {
	for rel, want := range map[string]bool{
		"internal/sim":       true,
		"internal/sim/sub":   true,
		"internal/core":      true,
		"internal/simulator": false,
		"internal/analysis":  false,
		"cmd/pifsim":         true,
		"cmdlet":             false,
		"":                   false,
	} {
		if got := detrangeTarget(rel); got != want {
			t.Errorf("detrangeTarget(%q) = %v, want %v", rel, got, want)
		}
	}
}

// TestBaselineRoundTrip checks Write/Read/Filter agree on the key format
// and that keys are line-number-free (stable across unrelated edits).
func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Analyzer: "detrange", File: "internal/sim/a.go", Line: 10, Col: 2, Message: "range over a map"},
		{Analyzer: "hotalloc", File: "internal/core/b.go", Line: 3, Col: 1, Message: "calls make"},
		{Analyzer: "hotalloc", File: "internal/core/b.go", Line: 99, Col: 1, Message: "calls make"}, // same key as above
	}
	path := filepath.Join(t.TempDir(), ".snapvet.baseline")
	if err := WriteBaseline(path, findings); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	base, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	if len(base) != 2 {
		t.Fatalf("baseline has %d keys, want 2 (line-free dedup): %v", len(base), base)
	}
	fresh, old := Filter(findings, base)
	if len(fresh) != 0 || len(old) != 3 {
		t.Errorf("Filter = %d fresh, %d old; want 0, 3", len(fresh), len(old))
	}
	moved := findings[0]
	moved.Line = 42 // unrelated edit shifts the line; the key must not care
	fresh, _ = Filter([]Finding{moved}, base)
	if len(fresh) != 0 {
		t.Errorf("line shift invalidated the baseline key: %v", fresh)
	}
	novel := Finding{Analyzer: "guardpure", File: "x.go", Message: "writes the configuration"}
	fresh, _ = Filter([]Finding{novel}, base)
	if len(fresh) != 1 {
		t.Errorf("novel finding not reported as fresh")
	}
}

// TestUpdateBaselineStable pins the -baseline-update contract: updating
// from an unchanged tree is a byte-for-byte no-op, and the delta counts
// track what actually changed.
func TestUpdateBaselineStable(t *testing.T) {
	findings := []Finding{
		{Analyzer: "detrange", File: "internal/sim/a.go", Line: 10, Col: 2, Message: "range over a map"},
		{Analyzer: "hotalloc", File: "internal/core/b.go", Line: 3, Col: 1, Message: "calls make"},
	}
	path := filepath.Join(t.TempDir(), ".snapvet.baseline")

	added, removed, kept, err := UpdateBaseline(path, findings)
	if err != nil {
		t.Fatalf("UpdateBaseline: %v", err)
	}
	if added != 2 || removed != 0 || kept != 0 {
		t.Errorf("first update = +%d -%d =%d, want +2 -0 =0", added, removed, kept)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	added, removed, kept, err = UpdateBaseline(path, findings)
	if err != nil {
		t.Fatalf("UpdateBaseline (again): %v", err)
	}
	if added != 0 || removed != 0 || kept != 2 {
		t.Errorf("idempotent update = +%d -%d =%d, want +0 -0 =2", added, removed, kept)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("baseline not byte-stable under re-update:\n--- first\n%s--- second\n%s", first, second)
	}

	added, removed, kept, err = UpdateBaseline(path, findings[:1])
	if err != nil {
		t.Fatalf("UpdateBaseline (shrunk): %v", err)
	}
	if added != 0 || removed != 1 || kept != 1 {
		t.Errorf("shrinking update = +%d -%d =%d, want +0 -1 =1", added, removed, kept)
	}
}

// TestReadBaselineMissing: a missing baseline file is an empty baseline,
// not an error — the shipped tree runs with no baseline at all.
func TestReadBaselineMissing(t *testing.T) {
	base, err := ReadBaseline(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(base) != 0 {
		t.Errorf("ReadBaseline(missing) = %v, %v; want empty, nil", base, err)
	}
}

// TestFindingString pins the vet-style rendering the CI log greps.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "detrange", File: "internal/sim/daemon.go", Line: 7, Col: 3, Message: "range over a map"}
	want := "internal/sim/daemon.go:7:3: [detrange] range over a map"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
