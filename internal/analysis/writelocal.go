package analysis

import (
	"go/ast"
	"go/types"

	"snappif/internal/analysis/dataflow"
)

// writelocal enforces the locally shared memory model's write rule
// (Section 2): in one atomic step a processor may write only its own
// variables. In engine terms, an action body — Apply or ApplyInto of a
// sim.Protocol implementer, plus everything they reach — must not mutate
// the pre-step configuration at all (the runner alone commits writes),
// and may write through exactly one shared state box: ApplyInto's
// caller-supplied dst, the acting processor's shadow box. The dst
// privilege follows the value interprocedurally: a helper receiving dst
// as a parameter from an action-reachable call site may write through
// that parameter too.
var writelocal = &Analyzer{
	Name: "writelocal",
	Doc:  "action bodies may write only the acting processor's state (via return value or ApplyInto dst)",
	Run:  runWritelocal,
}

func runWritelocal(pass *Pass) {
	st := pass.simTypes()
	if st == nil {
		return
	}
	eng := pass.engine()

	// allowed collects, per function, the objects an action may write a
	// state box through. Seeded with every ApplyInto dst parameter; then
	// propagated along action-reachable call edges: an argument rooted in
	// an allowed object confers the privilege on the callee's parameter.
	allowed := make(map[*types.Func]map[types.Object]bool)
	permit := func(fn *types.Func, obj types.Object) bool {
		if obj == nil {
			return false
		}
		set := allowed[fn]
		if set == nil {
			set = make(map[types.Object]bool)
			allowed[fn] = set
		}
		if set[obj] {
			return false
		}
		set[obj] = true
		return true
	}

	var roots []*types.Func
	for _, named := range protocolImplementers(pass.Prog, st) {
		for _, name := range []string{"Apply", "ApplyInto"} {
			fn := methodOf(named, name)
			if fn == nil {
				continue
			}
			roots = append(roots, fn)
			if name != "ApplyInto" {
				continue
			}
			if fi := eng.Info(fn); fi != nil {
				permit(fn, lastParamObj(fi))
			}
		}
	}

	reach := eng.Reachable(roots)
	// Fixpoint over the (finite) allowed sets: each pass threads dst
	// through one more level of helper calls.
	for changed := true; changed; {
		changed = false
		for _, fi := range reach {
			set := allowed[fi.Fn]
			if len(set) == 0 {
				continue
			}
			for _, c := range eng.Summary(fi.Fn).Calls {
				callee := eng.Info(c.Callee)
				if callee == nil {
					continue
				}
				for j, arg := range c.Expr.Args {
					if !set[argRootObj(fi.Pkg.Info, arg)] {
						continue
					}
					if permit(c.Callee, dataflow.ParamAt(callee, j)) {
						changed = true
					}
				}
			}
		}
	}

	for _, fi := range reach {
		fname := fi.Fn.Name()
		for _, s := range eng.Summary(fi.Fn).Effects {
			switch s.Kind {
			case dataflow.EffWriteConfig:
				pass.Report(s.Pos, "action-reachable %s writes the configuration; actions read the pre-step configuration and only the runner commits", fname)
			case dataflow.EffWriteBox:
				if s.Root != nil && allowed[fi.Fn][lookupObj(fi.Pkg.Info, s.Root)] {
					continue // the acting processor's own dst box
				}
				pass.Report(s.Pos, "action-reachable %s writes a state box that is not the acting processor's ApplyInto dst; the model forbids writing other processors' variables", fname)
			}
		}
	}
}

// argRootObj resolves the object an argument expression is rooted in,
// unwrapping the value-preserving wrappers (&x, *x, x.(T), parens).
func argRootObj(info *types.Info, arg ast.Expr) types.Object {
	for {
		switch x := arg.(type) {
		case *ast.ParenExpr:
			arg = x.X
		case *ast.UnaryExpr:
			arg = x.X
		case *ast.StarExpr:
			arg = x.X
		case *ast.TypeAssertExpr:
			arg = x.X
		case *ast.Ident:
			return lookupObj(info, x)
		default:
			return nil
		}
	}
}

// lookupObj resolves an identifier's object (use or definition).
func lookupObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// lastParamObj returns the object of the function's final declared
// parameter (ApplyInto's dst), or nil.
func lastParamObj(fi *dataflow.FuncInfo) types.Object {
	params := fi.Decl.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil
	}
	last := params.List[len(params.List)-1]
	if len(last.Names) == 0 {
		return nil
	}
	name := last.Names[len(last.Names)-1]
	return fi.Pkg.Info.Defs[name]
}
