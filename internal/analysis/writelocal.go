package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// writelocal enforces the locally shared memory model's write rule
// (Section 2): in one atomic step a processor may write only its own
// variables. In engine terms, an action body — Apply or ApplyInto of a
// sim.Protocol implementer, plus everything they reach — must not mutate
// the pre-step configuration at all (the runner alone commits writes),
// and may write through exactly one shared state box: ApplyInto's
// caller-supplied dst, the acting processor's shadow box.
var writelocal = &Analyzer{
	Name: "writelocal",
	Doc:  "action bodies may write only the acting processor's state (via return value or ApplyInto dst)",
	Run:  runWritelocal,
}

func runWritelocal(pass *Pass) {
	st := lookupSimTypes(pass.Prog)
	if st == nil {
		return
	}
	cg := pass.callGraph()

	// allowedDst collects the *types.Var of every ApplyInto dst parameter:
	// the one shared box an action may overwrite.
	allowedDst := make(map[types.Object]bool)
	var roots []*types.Func
	for _, named := range protocolImplementers(pass.Prog, st) {
		for _, name := range []string{"Apply", "ApplyInto"} {
			fn := methodOf(named, name)
			if fn == nil {
				continue
			}
			roots = append(roots, fn)
			if name != "ApplyInto" {
				continue
			}
			if node := cg.nodes[fn]; node != nil {
				if obj := lastParamObj(node); obj != nil {
					allowedDst[obj] = true
				}
			}
		}
	}

	for _, node := range cg.reachable(roots) {
		info := node.pkg.Info
		fname := node.fn.Name()
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			writes(n, func(lhs ast.Expr, pos token.Pos) {
				kind, root := classifyWrite(info, st, lhs)
				switch kind {
				case writeConfig:
					pass.Report(pos, "action-reachable %s writes the configuration; actions read the pre-step configuration and only the runner commits", fname)
				case writeStateBox:
					if root != nil && allowedDst[info.Uses[root]] {
						return // the acting processor's own dst box
					}
					pass.Report(pos, "action-reachable %s writes a state box that is not the acting processor's ApplyInto dst; the model forbids writing other processors' variables", fname)
				}
			})
			return true
		})
	}
}

// lastParamObj returns the object of the function's final declared
// parameter (ApplyInto's dst), or nil.
func lastParamObj(node *funcNode) types.Object {
	params := node.decl.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil
	}
	last := params.List[len(params.List)-1]
	if len(last.Names) == 0 {
		return nil
	}
	name := last.Names[len(last.Names)-1]
	return node.pkg.Info.Defs[name]
}
