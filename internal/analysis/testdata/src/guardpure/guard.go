// Package guardtest exercises the guardpure analyzer: the Enabled method
// of a sim.Protocol implementer, and every function it statically reaches,
// must be a pure predicate over registers. Each `// want` comment is a
// regexp the analyzer test matches against the finding reported on that
// line; lines without one must stay silent (the near-misses).
package guardtest

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"snappif/internal/sim"
)

// State is a one-register processor state with an auxiliary map.
type State struct {
	X     int
	Marks map[int]bool
}

// Clone implements sim.State.
func (s *State) Clone() sim.State { c := *s; return &c }

// seen is package state a guard must not mutate.
var seen = map[int]bool{}

// wake is a channel a guard must not send on.
var wake = make(chan int, 1)

// P implements sim.Protocol with a guard committing every sin guardpure
// knows about.
type P struct{}

var _ sim.Protocol = P{}

// Name implements sim.Protocol.
func (P) Name() string { return "guardtest" }

// ActionNames implements sim.Protocol.
func (P) ActionNames() []string { return []string{"A"} }

// InitialState implements sim.Protocol.
func (P) InitialState(int) sim.State { return &State{Marks: map[int]bool{}} }

// Enabled implements sim.Protocol — impurely.
func (P) Enabled(c *sim.Configuration, p int) []int {
	st := c.States[p].(*State) // near-miss: reading a box is what guards do
	st.X = 1                   // want `writes a processor-state box`
	c.States[p] = st           // want `writes the configuration`
	seen[p] = true             // want `stores into a map`
	wake <- p                  // want `sends on a channel`
	fmt.Println("guard ran")   // want `I/O from a guard`
	_ = time.Now()             // want `clock access from a guard`
	_ = rand.Intn(2)           // want `global randomness from a guard`
	helper(c, p)
	waived(c, p)
	if pure(c, p) {
		return []int{0}
	}
	return nil
}

// helper is reachable from the guard, so its impurity is flagged too.
func helper(c *sim.Configuration, p int) {
	_ = os.Getpid()                       // want `I/O from a guard`
	delete(c.States[p].(*State).Marks, p) // want `deletes from a map`
}

// pure is guardpure's near-miss: reads, local copies, and local mutation
// never fire — the rule is about shared registers, not local variables.
func pure(c *sim.Configuration, p int) bool {
	st := c.States[p].(*State)
	x := st.X // a := definition, not a write through the box
	x++       // mutating the local copy is fine
	r := rand.New(rand.NewSource(int64(p)))
	return x > 0 && r.Intn(2) == 0 // seeded *rand.Rand methods are deterministic
}

// waived shows an annotated exception: the suppression needs a reason and
// then the finding on that line is dropped.
func waived(c *sim.Configuration, p int) {
	seen[p] = false //snapvet:ok testdata: demonstrates a reasoned suppression
}

// Apply implements sim.Protocol (only Enabled matters to guardpure).
func (P) Apply(c *sim.Configuration, p int, a int) sim.State {
	next := *c.States[p].(*State)
	next.X++
	return &next
}
