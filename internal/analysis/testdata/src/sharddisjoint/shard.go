// Package shardtest exercises the sharddisjoint analyzer: goroutines
// launched with a static callee are sweep workers, and everything they
// reach may write shared memory only through shard-derived indices or
// per-worker locals. The package opts in via the file directive below
// (internal/flat needs no opt-in).
//
//snapvet:shardcheck
package shardtest

import "sync"

// job is a contiguous shard descriptor, the unit the orchestrator fans
// out; its fields are shard-derived wherever a received job flows.
type job struct{ lo, hi int }

// counter is package-level state no worker may touch.
var counter int

// pool mirrors the flat engine's sweep shape: a jobs channel, a results
// slice indexed by item, and some deliberately shared bait.
type pool struct {
	jobs    chan job
	out     []int
	scratch []int
	m       map[int]int
	done    chan int
	hook    func()
	ptr     *int
	total   int
	wg      sync.WaitGroup
}

func start(p *pool, workers int) {
	for i := 0; i < workers; i++ {
		go p.worker(i)
		go p.leaky(i)
	}
}

// worker is the sanctioned shape: every write lands in a slot keyed by a
// shard-derived index (the received job's range), in a local, or behind a
// sync primitive.
func (p *pool) worker(id int) {
	for j := range p.jobs {
		for i := j.lo; i < j.hi; i++ {
			p.out[i] = i * 2 // derived index: each slot belongs to this shard
		}
		fill(p.out, j.lo, j.hi) // derived arguments confer the privilege on the callee
		local := 0
		for i := j.lo; i < j.hi; i++ {
			local += p.out[i] // reads are unrestricted; local writes are private
		}
		p.total += local // want `sweep-worker-reachable worker writes a shared field`
		p.wg.Done()
	}
}

// fill is clean when called with derived bounds: its parameter derivation
// is checked per call site.
func fill(out []int, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = i
	}
}

// leaky commits every escape the discipline knows about.
func (p *pool) leaky(id int) {
	for j := range p.jobs {
		p.scratch[p.total] = id // want `writes an element at a non-shard-derived index`
		p.m[id] = 1             // want `writes a map; map writes race across workers`
		counter++               // want `writes package-level state`
		p.done <- id            // want `sends on a channel`
		*p.ptr = id             // want `stores through a pointer not proven to target its own shard's slot`
		p.hook()                // want `calls through a function value`
		_ = j
	}
}
