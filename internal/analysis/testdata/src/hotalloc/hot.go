// Package hotalloctest exercises the hotalloc analyzer: functions
// annotated //snapvet:hotpath must not contain per-step allocation
// constructs; everything else may allocate freely.
package hotalloctest

// T carries the buffers a hot path reuses across steps.
type T struct {
	buf  []int
	name string
}

// sink's interface parameter forces boxing at call sites.
func sink(v any) { _ = v }

// step is the hot path: every construct below that can heap-allocate per
// call is flagged; the sanctioned reuse patterns stay silent.
//
//snapvet:hotpath
func (t *T) step(xs []int, label string) {
	t.buf = append(t.buf[:0], xs...) // near-miss: self-append into a reused buffer
	t.buf = append(t.buf, 1)         // near-miss: amortized growth of the same buffer
	grown := append(t.buf, 2)        // want `does not feed back into its buffer`
	_ = grown
	m := make([]int, 4) // want `calls make`
	_ = m
	q := new(T) // want `calls new`
	_ = q
	s := []int{1, 2, 3} // want `builds a slice literal`
	_ = s
	mm := map[int]int{} // want `builds a map literal`
	_ = mm
	pt := &T{} // want `takes the address of a composite literal`
	_ = pt
	f := func() {} // want `creates a closure`
	f()
	sink(xs[0])        // want `boxes int`
	sink(42)           // near-miss: constants box to static data
	sink(t)            // near-miss: pointers fit the interface word
	b := []byte(label) // want `copies`
	_ = b
	v := T{name: label} // near-miss: struct literal by value stays on the stack
	_ = v
}

// cold is not annotated: allocation is fine off the hot path.
func (t *T) cold(n int) {
	t.buf = make([]int, n)
	t.name = string(make([]byte, n))
}
