// Package detrangetest exercises the detrange analyzer. It is not one of
// the engine packages, so the directive below opts it in — the same switch
// any future deterministic package flips.
//
//snapvet:deterministic
package detrangetest

import (
	"math/rand"
	"sort"
	"time"
)

// Sum folds a map by ranging it — the classic determinism leak.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over a map`
		total += v
	}
	return total
}

// SortedSum is the sanctioned shape: a reasoned suppression on the key
// sweep (the sort restores a canonical order), then iteration over the
// sorted slice, which is silent.
func SortedSum(m map[string]int) int {
	keys := make([]string, 0, len(m))
	for k := range m { //snapvet:ok key collection only; the sort below restores a canonical order
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys { // near-miss: slice iteration is ordered
		total += m[k]
	}
	return total
}

// Stamp reads the wall clock.
func Stamp() int64 {
	t := time.Now() // want `reads the wall clock`
	return t.Unix()
}

// Elapsed reads the wall clock twice over.
func Elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `reads the wall clock`
}

// Roll draws from the process-global source.
func Roll() int {
	return rand.Intn(6) // want `process-global source`
}

// SeededRoll threads a seeded *rand.Rand — the engine's pattern, silent.
func SeededRoll(r *rand.Rand) int {
	return r.Intn(6)
}

// NewRNG builds a seeded generator; the constructors are deterministic and
// silent too.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
