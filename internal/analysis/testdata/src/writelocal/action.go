// Package writelocaltest exercises the writelocal analyzer: an action body
// (Apply/ApplyInto of a sim.Protocol implementer, plus everything it
// reaches) reads the pre-step configuration and writes only the acting
// processor's state — via the return value or ApplyInto's dst box.
package writelocaltest

import "snappif/internal/sim"

// State is a one-register processor state.
type State struct{ X int }

// Clone implements sim.State.
func (s *State) Clone() sim.State { c := *s; return &c }

// P implements sim.InPlaceProtocol with actions that break the write rule.
type P struct{}

var _ sim.InPlaceProtocol = P{}

// Name implements sim.Protocol.
func (P) Name() string { return "writelocaltest" }

// ActionNames implements sim.Protocol.
func (P) ActionNames() []string { return []string{"A"} }

// InitialState implements sim.Protocol.
func (P) InitialState(int) sim.State { return &State{} }

// Enabled implements sim.Protocol (clean; writelocal only roots at
// Apply/ApplyInto).
func (P) Enabled(c *sim.Configuration, p int) []int {
	if c.States[p].(*State).X == 0 {
		return []int{0}
	}
	return nil
}

// Apply implements sim.Protocol — and writes everything it must not. A
// write whose access path passes through the configuration reports as a
// configuration write; one through a local box alias reports as a
// state-box write.
func (P) Apply(c *sim.Configuration, p int, a int) sim.State {
	for _, q := range c.G.Neighbors(p) {
		c.States[q].(*State).X = 0 // want `writes the configuration`
	}
	c.States[p] = &State{X: 1} // want `writes the configuration`
	own := c.States[p].(*State)
	own.X = 2 // want `writes a state box that is not the acting processor's ApplyInto dst`
	scribble(c, p)
	next := *c.States[p].(*State) // near-miss: value copy of the own state
	next.X++                      // near-miss: mutating the local copy
	return &next
}

// scribble is reachable from Apply; the write rule follows the call graph.
func scribble(c *sim.Configuration, p int) {
	box := c.States[p].(*State)
	box.X = 7 // want `writes a state box`
}

// ApplyInto implements sim.InPlaceProtocol. Writing through dst — the
// acting processor's shadow box handed in by the runner — is the sanctioned
// near-miss; any other box is still flagged.
func (P) ApplyInto(c *sim.Configuration, p int, a int, dst sim.State) {
	*dst.(*State) = State{X: 1} // near-miss: the one allowed write target
	if len(c.G.Neighbors(p)) > 0 {
		q := c.G.Neighbors(p)[0]
		c.States[q].(*State).X = 3 // want `writes the configuration`
	}
}
