// Package annotationstest carries a reasonless suppression; the driver
// reports it as an annotation-hygiene finding (suppressions must explain
// themselves).
package annotationstest

// Value exists to host the bare directive below.
var Value = 1 //snapvet:ok
