// Package obstest exercises the obspure analyzer: every exported
// pointer-receiver method of a //snapvet:nilsafe type must be a no-op on a
// nil receiver — no dereference, no side effects, no allocation — because
// engines wire disabled observers as nil and call them unconditionally.
package obstest

// wake is a channel an observer must not touch while disabled.
var wake = make(chan int, 1)

// journal is package state an observer must not grow while disabled.
var journal []int

// record appends to the journal: fine when enabled, a side effect the nil
// path must never reach.
func record(v int) { journal = append(journal, v) }

// Rec is the disabled-observer contract under test: nil means off.
//
//snapvet:nilsafe
type Rec struct {
	n   int
	buf []int
}

// Add is the canonical guarded shape.
func (r *Rec) Add(v int) {
	if r == nil {
		return
	}
	r.n += v
}

// Enabled compares the receiver without dereferencing it.
func (r *Rec) Enabled() bool { return r != nil }

// Level relies on short-circuit evaluation: the deref sits behind the nil
// disjunct and is never reached.
func (r *Rec) Level() int {
	if r == nil || r.n == 0 {
		return 0
	}
	return r.n
}

// Active guards with the conjunction form.
func (r *Rec) Active() bool { return r != nil && r.n > 0 }

// Bump inverts the guard: the body is off the nil path entirely.
func (r *Rec) Bump() {
	if r != nil {
		r.n++
	}
}

// MustN may panic on misuse — crashing is allowed, observing is not.
func (r *Rec) MustN() int {
	if r == nil {
		panic("disabled recorder")
	}
	return r.n
}

// Total recurses through an unexported same-type helper: nil flows into
// count, whose own guard keeps the chain clean.
func (r *Rec) Total() int {
	return r.count()
}

func (r *Rec) count() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Bad dereferences the receiver with no guard at all.
func (r *Rec) Bad() int {
	return r.n // want `the nil-receiver path of Rec.Bad dereferences the receiver`
}

// Sum reaches a deref through a same-type helper: the finding lands in the
// helper, where the fix belongs.
func (r *Rec) Sum() int {
	return r.raw()
}

func (r *Rec) raw() int {
	return r.n // want `the nil-receiver path of Rec.raw dereferences the receiver`
}

// Leaky allocates before its guard: the disabled path costs a heap
// allocation on every call.
func (r *Rec) Leaky(vs []int) {
	tmp := make([]int, len(vs)) // want `the nil-receiver path of Rec.Leaky allocates \(make\)`
	if r == nil {
		return
	}
	copy(r.buf, tmp)
}

// Notify signals before its guard: a disabled observer must not touch
// shared channels.
func (r *Rec) Notify() {
	wake <- 1 // want `the nil-receiver path of Rec.Notify sends on a channel`
	if r == nil {
		return
	}
	r.n++
}

// Mark calls an impure helper before its guard: the engine's transitive
// summary rules it out.
func (r *Rec) Mark() {
	record(1) // want `the nil-receiver path of Rec.Mark calls record, which is not provably side-effect-free`
	if r == nil {
		return
	}
	r.n++
}

// table, stop, and hook are more shared bait for the unguarded paths
// below.
var (
	table = map[int]int{}
	stop  = make(chan int)
	hook  func()
)

// pad is effect-free but allocates: the precise finding names the cost.
func pad() []int { return make([]int, 8) }

// Guarded folds an extra condition into the canonical conjunction guard;
// nil short-circuits the whole test false.
func (r *Rec) Guarded(v int) {
	if r != nil && v > 0 {
		r.n += v
	}
}

// Negated guards through double negation; the walker still proves the
// early return.
func (r *Rec) Negated() bool {
	if !(r != nil) {
		return false
	}
	return r.n > 0
}

// Stash writes a shared map before its guard.
func (r *Rec) Stash(v int) {
	table[v] = v // want `the nil-receiver path of Rec.Stash stores into a map`
	if r == nil {
		return
	}
	r.n = v
}

// Drop deletes from a shared map before its guard.
func (r *Rec) Drop(v int) {
	delete(table, v) // want `the nil-receiver path of Rec.Drop deletes from a map`
	if r == nil {
		return
	}
	r.n--
}

// Halt closes a shared channel before its guard.
func (r *Rec) Halt() {
	close(stop) // want `the nil-receiver path of Rec.Halt closes a channel`
	if r == nil {
		return
	}
	r.n = 0
}

// Fire calls through a function value: the engine cannot see past it.
func (r *Rec) Fire() {
	hook() // want `the nil-receiver path of Rec.Fire calls through a function value`
	if r == nil {
		return
	}
	r.n++
}

// Pad reaches an allocation through an otherwise effect-free helper.
func (r *Rec) Pad() {
	_ = pad() // want `the nil-receiver path of Rec.Pad calls pad, which can allocate`
	if r == nil {
		return
	}
	r.n++
}
