// Package radiustest exercises the radiusbound analyzer: a LocalProtocol's
// Enabled may read processor state at most DirtyRadius hops from p (one hop
// when no DirtyRadius is declared). Derived-versus-declared mismatches are
// reported on the protocol's type declaration line; statically unbounded
// reads on the read itself.
package radiustest

import (
	"snappif/internal/graph"
	"snappif/internal/sim"
)

// State is a one-register processor state.
type State struct{ X int }

// Clone implements sim.State.
func (s *State) Clone() sim.State { c := *s; return &c }

// st is the box accessor every guard below composes through: a 0-hop read
// of its processor argument.
func st(c *sim.Configuration, p int) *State { return c.States[p].(*State) }

// plumbing stamps out the Protocol boilerplate radiusbound ignores.
type plumbing struct{}

func (plumbing) Name() string               { return "radiustest" }
func (plumbing) ActionNames() []string      { return []string{"A"} }
func (plumbing) InitialState(int) sim.State { return &State{} }
func (plumbing) Apply(c *sim.Configuration, p int, a int) sim.State {
	next := *c.States[p].(*State)
	next.X++
	return &next
}

// Clean reads one hop and declares nothing: the implicit radius 1 holds.
type Clean struct {
	plumbing
	g *graph.Graph
}

func (u *Clean) GuardsAreLocal() bool { return true }

func (u *Clean) Enabled(c *sim.Configuration, p int) []int {
	for _, q := range u.g.Neighbors(p) {
		if st(c, q).X > st(c, p).X {
			return []int{0}
		}
	}
	return nil
}

// Understated declares radius 1 while its guard composes two Neighbors
// hops: the incremental enabled cache would go silently stale.
type Understated struct { // want `Understated declares DirtyRadius 1 but Enabled reads state 2 hops away`
	plumbing
	g *graph.Graph
}

func (u *Understated) GuardsAreLocal() bool { return true }
func (u *Understated) DirtyRadius() int     { return 1 }

func (u *Understated) Enabled(c *sim.Configuration, p int) []int {
	for _, q := range u.g.Neighbors(p) {
		for _, r := range u.g.Neighbors(q) {
			if st(c, r).X > st(c, p).X {
				return []int{0}
			}
		}
	}
	return nil
}

// Hidden reads two hops and declares no DirtyRadius at all — the same
// understatement through the interface-assertion path (the runner assumes
// radius 1 for any LocalProtocol without the extension).
type Hidden struct { // want `Hidden declares DirtyRadius 1 but Enabled reads state 2 hops away`
	plumbing
	g *graph.Graph
}

func (u *Hidden) GuardsAreLocal() bool { return true }

func (u *Hidden) Enabled(c *sim.Configuration, p int) []int {
	for _, q := range u.g.Neighbors(p) {
		for _, r := range u.g.Neighbors(q) {
			if st(c, r).X > st(c, q).X {
				return []int{0}
			}
		}
	}
	return nil
}

// Overstated declares radius 3 for a 1-hop guard: sound but wasteful, so
// advisory only.
type Overstated struct { // want `Overstated declares DirtyRadius 3 but Enabled reads at most 1 hops`
	plumbing
	g *graph.Graph
}

func (u *Overstated) GuardsAreLocal() bool { return true }
func (u *Overstated) DirtyRadius() int     { return 3 }

func (u *Overstated) Enabled(c *sim.Configuration, p int) []int {
	for _, q := range u.g.Neighbors(p) {
		if st(c, q).X != st(c, p).X {
			return []int{0}
		}
	}
	return nil
}

// Unbounded indexes state through a protocol-owned lookup table: the hop
// walker cannot bound table[p]'s distance from p, so the read itself is
// the finding.
type Unbounded struct {
	plumbing
	table []int
}

func (u *Unbounded) GuardsAreLocal() bool { return true }

func (u *Unbounded) Enabled(c *sim.Configuration, p int) []int {
	if st(c, u.table[p]).X > 0 { // want `reads processor state at a statically unbounded hop distance`
		return []int{0}
	}
	return nil
}

// NonConst computes its radius at run time, which no static check can
// verify against the guard.
type NonConst struct { // want `DirtyRadius of NonConst is not a compile-time constant`
	plumbing
	g *graph.Graph
	r int
}

func (u *NonConst) GuardsAreLocal() bool { return true }
func (u *NonConst) DirtyRadius() int     { return u.r }

func (u *NonConst) Enabled(c *sim.Configuration, p int) []int {
	if st(c, p).X > 0 {
		return []int{0}
	}
	return nil
}
