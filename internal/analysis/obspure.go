package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"snappif/internal/analysis/dataflow"
)

// obspure proves the observability contract the engines rely on: a
// disabled observer is a nil pointer, and every exported pointer-receiver
// method of a `//snapvet:nilsafe` type (obs.Tracer, telemetry.Telemetry)
// must be a statically verified no-op on that nil receiver — no receiver
// dereference, no side effects, no heap allocation. The checker walks each
// method body along the nil path only: conditions are evaluated under
// "receiver == nil" with short-circuit semantics, so code behind the
// `if t == nil { return }` guard (or the false arm of `t != nil && …`)
// is out of scope. panic calls are allowed — crashing on misuse is not an
// observer effect. Approximations: a nested short-circuit inside a checked
// subexpression is effect-scanned whole, and stdlib callees without an
// effect classification are assumed pure.
var obspure = &Analyzer{
	Name: "obspure",
	Doc:  "nil-receiver paths of //snapvet:nilsafe observer types are alloc- and effect-free",
	Run:  runObspure,
}

func runObspure(pass *Pass) {
	eng := pass.engine()
	checked := make(map[*types.Func]bool)
	for ts, ok := range pass.ann.nilsafe {
		if !ok {
			continue
		}
		named := resolveTypeSpec(pass, ts)
		if named == nil {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			fn := named.Method(i)
			if !fn.Exported() || !pointerReceiver(fn) {
				continue
			}
			checkNilPath(pass, eng, named, fn, checked)
		}
	}
}

// resolveTypeSpec maps an annotated type declaration to its named type.
func resolveTypeSpec(pass *Pass, ts *ast.TypeSpec) *types.Named {
	for _, pkg := range pass.Prog.Packages {
		if obj := pkg.Info.Defs[ts.Name]; obj != nil {
			named, _ := obj.Type().(*types.Named)
			return named
		}
	}
	return nil
}

func pointerReceiver(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	return isPtr
}

// checkNilPath walks fn's body under "receiver == nil". Memoized so
// same-type helper methods called on the receiver are checked once and
// mutual recursion terminates.
func checkNilPath(pass *Pass, eng *dataflow.Engine, named *types.Named, fn *types.Func, checked map[*types.Func]bool) {
	if checked[fn] {
		return
	}
	checked[fn] = true
	fi := eng.Info(fn)
	if fi == nil || fi.Decl.Body == nil {
		return
	}
	w := &nilWalker{
		pass: pass, eng: eng, fi: fi, named: named,
		fname: named.Obj().Name() + "." + fn.Name(), checked: checked,
	}
	if recv := fi.Decl.Recv; recv != nil && len(recv.List) == 1 && len(recv.List[0].Names) == 1 {
		w.recv = fi.Pkg.Info.Defs[recv.List[0].Names[0]]
	}
	w.stmts(fi.Decl.Body.List)
}

// condVerdict is a condition's truth value under "receiver == nil".
type condVerdict int

const (
	condUnknown condVerdict = iota
	condTrue
	condFalse
)

type nilWalker struct {
	pass    *Pass
	eng     *dataflow.Engine
	fi      *dataflow.FuncInfo
	named   *types.Named
	fname   string
	recv    types.Object // nil for unnamed receivers
	checked map[*types.Func]bool
}

func (w *nilWalker) violate(pos token.Pos, format string, args ...any) {
	w.pass.Report(pos, format, args...)
}

// stmts walks a statement list on the nil path; true means execution
// provably terminates (returns or panics) before the list's end.
func (w *nilWalker) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if w.stmt(s) {
			return true
		}
	}
	return false
}

func (w *nilWalker) stmt(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.IfStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		switch w.cond(x.Cond) {
		case condTrue:
			// The guard fires on nil: only its body runs; statements after
			// the if are reachable only if the body falls through.
			return w.stmts(x.Body.List)
		case condFalse:
			if x.Else != nil {
				return w.stmt(x.Else)
			}
			return false
		default:
			w.stmts(x.Body.List)
			if x.Else != nil {
				w.stmt(x.Else)
			}
			return false
		}
	case *ast.BlockStmt:
		return w.stmts(x.List)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.evalExpr(r)
		}
		return true
	case *ast.ExprStmt:
		w.evalExpr(x.X)
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if dataflow.BuiltinName(w.fi.Pkg.Info, call) == "panic" {
				return true
			}
		}
		return false
	case nil:
		return false
	default:
		// Assignments, loops, switches, defers: scanned whole (no
		// short-circuit reasoning below the statement level).
		w.scan(s)
		return false
	}
}

// cond evaluates a condition under "receiver == nil", checking exactly the
// operands that would be evaluated at runtime.
func (w *nilWalker) cond(e ast.Expr) condVerdict {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LOR:
			switch w.cond(x.X) {
			case condTrue:
				return condTrue // right operand never evaluated
			case condFalse:
				return w.cond(x.Y)
			default:
				w.cond(x.Y)
				return condUnknown
			}
		case token.LAND:
			switch w.cond(x.X) {
			case condFalse:
				return condFalse // right operand never evaluated
			case condTrue:
				return w.cond(x.Y)
			default:
				w.cond(x.Y)
				return condUnknown
			}
		case token.EQL:
			if w.isRecvNilCompare(x) {
				return condTrue
			}
		case token.NEQ:
			if w.isRecvNilCompare(x) {
				return condFalse
			}
		}
		w.evalExpr(x.X)
		w.evalExpr(x.Y)
		return condUnknown
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			switch w.cond(x.X) {
			case condTrue:
				return condFalse
			case condFalse:
				return condTrue
			}
			return condUnknown
		}
	}
	w.evalExpr(e)
	return condUnknown
}

// isRecvNilCompare matches `recv == nil` / `nil != recv` in either order.
func (w *nilWalker) isRecvNilCompare(b *ast.BinaryExpr) bool {
	if w.recv == nil {
		return false
	}
	isNil := func(e ast.Expr) bool {
		tv, ok := w.fi.Pkg.Info.Types[e]
		return ok && tv.IsNil()
	}
	return (w.isRecvIdent(b.X) && isNil(b.Y)) || (w.isRecvIdent(b.Y) && isNil(b.X))
}

func (w *nilWalker) isRecvIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && w.recv != nil && lookupObj(w.fi.Pkg.Info, id) == w.recv
}

// evalExpr checks one evaluated expression: short-circuit operators route
// back through cond so skipped operands stay unchecked; everything else is
// scanned whole.
func (w *nilWalker) evalExpr(e ast.Expr) {
	if e == nil {
		return
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		if x.Op == token.LAND || x.Op == token.LOR {
			w.cond(e)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			w.cond(e)
			return
		}
	}
	w.scan(e)
}

// scan reports every nil-path violation in a subtree: effects and
// allocations (the summary scanner's classification), receiver
// dereferences, and calls whose transitive purity the engine cannot
// vouch for.
func (w *nilWalker) scan(n ast.Node) {
	effects, allocs := dataflow.ScanNode(w.pass.simTypes(), w.fi.Pkg, nil, n)
	for _, s := range effects {
		w.violate(s.Pos, "the nil-receiver path of %s %s; a disabled observer must be a no-op", w.fname, effDesc(s))
	}
	for _, a := range allocs {
		w.violate(a.Pos, "the nil-receiver path of %s allocates (%s); a disabled observer costs one nil check, not a heap allocation", w.fname, allocDesc(a.Alloc))
	}
	ast.Inspect(n, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.CallExpr:
			return w.callCheck(x)
		case *ast.SelectorExpr:
			if w.isRecvIdent(x.X) {
				w.violate(x.Pos(), "the nil-receiver path of %s dereferences the receiver; a disabled (nil) observer must be a no-op", w.fname)
				return false
			}
		case *ast.StarExpr:
			if w.isRecvIdent(x.X) {
				w.violate(x.Pos(), "the nil-receiver path of %s dereferences the receiver; a disabled (nil) observer must be a no-op", w.fname)
				return false
			}
		case *ast.IndexExpr:
			if w.isRecvIdent(x.X) {
				w.violate(x.Pos(), "the nil-receiver path of %s indexes the nil receiver; a disabled (nil) observer must be a no-op", w.fname)
				return false
			}
		}
		return true
	})
}

// callCheck handles one call on the nil path; the return value feeds
// ast.Inspect (false = subtree handled here).
func (w *nilWalker) callCheck(call *ast.CallExpr) bool {
	info := w.fi.Pkg.Info
	switch dataflow.BuiltinName(info, call) {
	case "":
		// Conversion or ordinary call.
	case "panic":
		return false // crashing on misuse is allowed; its argument never escapes a live run
	default:
		return true // len/cap/…: arguments checked by the normal descent
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true // conversion
	}

	// A method invoked on the receiver itself: nil flows in, so the callee
	// must be nil-safe too — recurse instead of flagging the selector.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && w.isRecvIdent(sel.X) {
		callee := dataflow.CalleeOf(info, call)
		if callee != nil && sameReceiverType(callee, w.named) {
			checkNilPath(w.pass, w.eng, w.named, callee, w.checked)
			for _, arg := range call.Args {
				w.evalExpr(arg)
			}
			return false
		}
		w.violate(call.Pos(), "the nil-receiver path of %s dereferences the receiver; a disabled (nil) observer must be a no-op", w.fname)
		return false
	}

	callee := dataflow.CalleeOf(info, call)
	if callee == nil {
		w.violate(call.Pos(), "the nil-receiver path of %s calls through a function value; a disabled observer must be a no-op", w.fname)
		return true
	}
	if w.isRecvArg(call) {
		w.violate(call.Pos(), "the nil-receiver path of %s passes the nil receiver to %s, which may dereference it", w.fname, callee.Name())
	}
	if fi := w.eng.Info(callee); fi != nil && !w.eng.Clean(callee) {
		// Distinguish the two ways a callee dirties the nil path: real
		// side effects (or calls the engine cannot see through) versus a
		// mere allocation — the fix differs.
		effectful := false
		for _, rfi := range w.eng.Reachable([]*types.Func{callee}) {
			sum := w.eng.Summary(rfi.Fn)
			if len(sum.Effects) > 0 || len(sum.Dynamic) > 0 {
				effectful = true
				break
			}
		}
		if effectful {
			w.violate(call.Pos(), "the nil-receiver path of %s calls %s, which is not provably side-effect-free", w.fname, callee.Name())
		} else {
			w.violate(call.Pos(), "the nil-receiver path of %s calls %s, which can allocate", w.fname, callee.Name())
		}
	}
	return true
}

// isRecvArg reports whether the bare receiver is passed as an argument.
func (w *nilWalker) isRecvArg(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if w.isRecvIdent(arg) {
			return true
		}
	}
	return false
}

// sameReceiverType reports whether fn is a method of named (up to type
// universe: same origin object position).
func sameReceiverType(fn *types.Func, named *types.Named) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pos() == named.Obj().Pos()
}

// effDesc names an effect kind for obspure's message.
func effDesc(s dataflow.Site) string {
	switch s.Kind {
	case dataflow.EffSend:
		return "sends on a channel"
	case dataflow.EffClose:
		return "closes a channel"
	case dataflow.EffDelete:
		return "deletes from a map"
	case dataflow.EffPrint:
		return "calls " + s.Detail
	case dataflow.EffIO:
		return "performs I/O (" + calleeDesc(s) + ")"
	case dataflow.EffClock:
		return "reads the clock (" + calleeDesc(s) + ")"
	case dataflow.EffRand:
		return "draws global randomness (" + calleeDesc(s) + ")"
	case dataflow.EffWriteConfig:
		return "writes the configuration"
	case dataflow.EffWriteBox:
		return "writes a processor-state box"
	case dataflow.EffWriteMap:
		return "stores into a map"
	case dataflow.EffWriteGlobal:
		return "writes package-level state"
	case dataflow.EffDynamic:
		return "calls through a function value"
	default:
		return "has side effects"
	}
}

func calleeDesc(s dataflow.Site) string {
	if s.Callee == nil {
		return "?"
	}
	return dataflow.PkgPath(s.Callee) + "." + s.Callee.Name()
}
