// Package analysis implements snapvet, the project-specific static
// analyzer: a vet-style driver plus four analyzers that enforce, at
// compile time, the paper's locally shared memory model (Section 2) and
// the simulation engine's determinism and zero-allocation invariants.
//
// The loader shells out to `go list -export -deps -json` for package
// discovery, parses every module package from source, and type-checks it
// with go/types; imports outside the module (the standard library)
// resolve through the toolchain's export data, so the whole pipeline is
// stdlib-only — no golang.org/x/tools dependency.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked module package.
type Package struct {
	// Path is the import path. Test variants ("X [X.test]" in go list
	// output) carry the base path X.
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Files are the parsed Go files (test files included for variants).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
	// Test marks a package type-checked for a test binary: an in-package
	// test variant or an external _test package. Variants re-check their
	// base files into a fresh type universe, so analyzers must match model
	// types by name, not object identity (see simTypes).
	Test bool
}

// Program is a loaded module: every module package, type-checked from
// source against a single file set, in dependency order.
type Program struct {
	// Fset positions every parsed file.
	Fset *token.FileSet
	// ModulePath is the module's declared path (e.g. "snappif").
	ModulePath string
	// ModuleDir is the module root directory.
	ModuleDir string
	// Packages lists the module packages in dependency order
	// (dependencies before dependents).
	Packages []*Package

	byPath map[string]*Package
	export map[string]string // non-module import path -> export data file
	imp    types.Importer

	// redirect, when non-nil, resolves module import paths before byPath:
	// while checking the packages of one test binary it maps each rebuilt
	// dependency to that binary's variant, so `import "x"` inside the
	// test universe sees the variant of x, not the base package.
	redirect map[string]*Package
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	ForTest    string
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// Load discovers the packages matching patterns (default "./...") with the
// go tool, resolved from dir (any directory inside the module), and
// type-checks every module package from source.
func Load(dir string, patterns ...string) (*Program, error) {
	return load(dir, false, patterns)
}

// LoadTests is Load plus every test variant: for each test binary `go
// list -deps -test` rebuilds the package under test (base files + in-
// package test files) and every module dependency that imports it, and
// adds the external _test package. Each binary's rebuilt packages form
// one coherent type universe; imports inside it resolve to the variants,
// so the analyzers see test code exactly as the compiler does.
func LoadTests(dir string, patterns ...string) (*Program, error) {
	return load(dir, true, patterns)
}

func load(dir string, tests bool, patterns []string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-deps", "-export"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, "-json=ImportPath,Dir,GoFiles,Export,Standard,ForTest,Module,Error")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
		export: make(map[string]string),
	}
	prog.imp = newProgramImporter(prog)

	var modPkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Standard || lp.Module == nil {
			prog.export[lp.ImportPath] = lp.Export
			continue
		}
		if strings.HasSuffix(lp.ImportPath, ".test") && lp.ForTest == "" {
			continue // the synthesized test main: generated, not ours
		}
		if prog.ModulePath == "" {
			prog.ModulePath = lp.Module.Path
			prog.ModuleDir = lp.Module.Dir
		}
		modPkgs = append(modPkgs, lp)
	}

	// go list -deps emits dependencies before dependents, so checking in
	// output order guarantees module imports resolve to already-checked
	// packages (one *types.Package identity per path). Test variants print
	// as "path [binary.test]": each binary's variants share one universe,
	// accumulated here and consulted by the importer before the base
	// packages while that universe is being checked.
	universes := make(map[string]map[string]*Package)
	for _, lp := range modPkgs {
		path, universe := splitVariant(lp.ImportPath)
		prog.redirect = nil
		if universe != "" {
			if universes[universe] == nil {
				universes[universe] = make(map[string]*Package)
			}
			prog.redirect = universes[universe]
		}
		pkg, err := prog.check(path, lp.Dir, lp.GoFiles)
		prog.redirect = nil
		if err != nil {
			return nil, err
		}
		pkg.Test = universe != ""
		prog.Packages = append(prog.Packages, pkg)
		if universe == "" {
			prog.byPath[path] = pkg
		} else {
			universes[universe][path] = pkg
		}
	}
	return prog, nil
}

// splitVariant splits go list's "path [binary.test]" import-path form.
func splitVariant(importPath string) (path, universe string) {
	if i := strings.IndexByte(importPath, ' '); i >= 0 &&
		strings.HasPrefix(importPath[i+1:], "[") && strings.HasSuffix(importPath, "]") {
		return importPath[:i], importPath[i+2 : len(importPath)-1]
	}
	return importPath, ""
}

// Lookup returns the loaded module package with the given import path, or
// nil.
func (prog *Program) Lookup(path string) *Package { return prog.byPath[path] }

// RelPath returns path relative to the module root ("internal/sim" for
// "snappif/internal/sim", "" for the root package).
func (prog *Program) RelPath(path string) string {
	if path == prog.ModulePath {
		return ""
	}
	return strings.TrimPrefix(path, prog.ModulePath+"/")
}

// LoadDir parses and type-checks one extra directory of Go files (a
// testdata package) against the already-loaded program: imports of module
// packages resolve to the loaded ones, everything else through export
// data. The package is not added to prog.Packages.
func (prog *Program) LoadDir(dir, importPath string) (*Package, error) {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs // positions and Package.Dir must agree with ModuleDir
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return prog.check(importPath, dir, files)
}

// check parses and type-checks one package.
func (prog *Program) check(path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: prog.imp}
	pkg, err := conf.Check(path, prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Pkg: pkg, Info: info}, nil
}

// programImporter resolves module imports to the program's source-checked
// packages and everything else through the gc export data the go tool
// produced for -export.
type programImporter struct {
	prog *Program
	gc   types.Importer
}

func newProgramImporter(prog *Program) *programImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := prog.export[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return &programImporter{prog: prog, gc: importer.ForCompiler(prog.Fset, "gc", lookup)}
}

// Import implements types.Importer.
func (pi *programImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := pi.prog.redirect[path]; p != nil {
		return p.Pkg, nil
	}
	if p := pi.prog.byPath[path]; p != nil {
		return p.Pkg, nil
	}
	return pi.gc.Import(path)
}
