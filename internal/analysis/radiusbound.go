package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"

	"snappif/internal/analysis/dataflow"
)

// radiusbound verifies the sim.RadiusProtocol contract statically: for
// every sim.LocalProtocol implementer, the hop distance its Enabled method
// actually reads (derived by the dataflow engine's neighbor-hop walker)
// must not exceed the radius it declares — DirtyRadius() for a
// RadiusProtocol, 1 otherwise. Understating the radius makes the runner's
// incremental enabled cache silently stale (the exact failure
// TestDirtyRadiusStaleWithoutHint demonstrates), so it is an error;
// overstating only wastes guard re-evaluations, so it is a warning. Reads
// whose hop distance the walker cannot bound (indexing state by a
// protocol-owned table, ranging over a whole column) are errors at the
// read site unless vouched for with //snapvet:ok.
var radiusbound = &Analyzer{
	Name: "radiusbound",
	Doc:  "Enabled of a LocalProtocol reads at most DirtyRadius (default 1) hops",
	Run:  runRadiusbound,
}

func runRadiusbound(pass *Pass) {
	st := pass.simTypes()
	if st == nil {
		return
	}
	eng := pass.engine()
	for _, named := range protocolImplementers(pass.Prog, st) {
		if !st.implementsLocal(named) {
			continue
		}
		fn := methodOf(named, "Enabled")
		if fn == nil || eng.Info(fn) == nil {
			continue // no body in the module; nothing to derive
		}
		tname := named.Obj().Name()
		declPos := named.Obj().Pos()
		if pass.suppressedAt(declPos) {
			continue // the whole contract is vouched for at the type
		}

		hops := eng.HopsOf(fn)
		bounded := true
		for _, sitePos := range hops.UnboundedSites {
			if pass.suppressedAt(sitePos) {
				continue // vouched: the index is bounded for a reason the walker cannot see
			}
			bounded = false
			pass.Report(sitePos, "Enabled of %s reads processor state at a statically unbounded hop distance; the radius contract cannot be verified — bound the read or annotate //snapvet:ok <reason>", tname)
		}

		derived := 0
		for _, h := range hops.ByParam {
			if h > derived {
				derived = h
			}
		}

		declared := 1
		if st.implementsRadius(named) {
			dr := methodOf(named, "DirtyRadius")
			v, ok := constRadius(eng, dr)
			if !ok {
				pass.Report(declPos, "DirtyRadius of %s is not a compile-time constant; radiusbound cannot check the radius contract — return a constant or annotate //snapvet:ok <reason>", tname)
				continue
			}
			declared = v
		}

		if !bounded {
			continue // the site errors above already describe the failure
		}
		if derived >= dataflow.Unbounded {
			pass.Report(declPos, "Enabled of %s reads state beyond %d hops (past the analyzable bound); declare and honor a finite DirtyRadius or annotate //snapvet:ok <reason>", tname, dataflow.MaxHop)
			continue
		}
		if derived > declared {
			pass.Report(declPos, "%s declares DirtyRadius %d but Enabled reads state %d hops away; an understated radius leaves the incremental enabled cache silently stale", tname, declared, derived)
		} else if derived < declared && derived > 0 {
			pass.Warn(declPos, "%s declares DirtyRadius %d but Enabled reads at most %d hops; the enabled cache re-evaluates a wider neighborhood than the guards use", tname, declared, derived)
		}
	}
}

// constRadius extracts the constant return value of a DirtyRadius body:
// a single `return <const>` statement. Anything else is not statically
// checkable and the caller reports it.
func constRadius(eng *dataflow.Engine, fn *types.Func) (int, bool) {
	if fn == nil {
		return 0, false
	}
	fi := eng.Info(fn)
	if fi == nil || fi.Decl.Body == nil || len(fi.Decl.Body.List) != 1 {
		return 0, false
	}
	ret, ok := fi.Decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return 0, false
	}
	tv, ok := fi.Pkg.Info.Types[ret.Results[0]]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, false
	}
	return int(v), true
}
