package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a graph from a "family:params" spec — the CLI-facing
// topology syntax shared by pifhunt, pifexplore, and pifserve:
//
//	line:N  ring:N  star:N  complete:N  hypercube:DIM  btree:N  grid:RxC
func Parse(spec string) (*Graph, error) {
	fam, params, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("topology %q: want family:params (e.g. grid:2x4)", spec)
	}
	if fam == "grid" {
		r, c, ok := strings.Cut(params, "x")
		if !ok {
			return nil, fmt.Errorf("topology %q: want grid:RxC", spec)
		}
		rows, err := strconv.Atoi(r)
		if err != nil {
			return nil, fmt.Errorf("topology %q: %w", spec, err)
		}
		cols, err := strconv.Atoi(c)
		if err != nil {
			return nil, fmt.Errorf("topology %q: %w", spec, err)
		}
		return Grid(rows, cols)
	}
	n, err := strconv.Atoi(params)
	if err != nil {
		return nil, fmt.Errorf("topology %q: %w", spec, err)
	}
	switch fam {
	case "line":
		return Line(n)
	case "ring":
		return Ring(n)
	case "star":
		return Star(n)
	case "complete":
		return Complete(n)
	case "hypercube":
		return Hypercube(n)
	case "btree":
		return BinaryTree(n)
	}
	return nil, fmt.Errorf("unknown topology family %q", fam)
}
