package graph

// This file implements the graph metrics that the paper's complexity analysis
// refers to: BFS distances, eccentricity, diameter, BFS spanning trees (used
// by the tree-based PIF baseline), and the longest elementary chordless path
// (the quantity that bounds the height h of the tree constructed during a PIF
// cycle — Theorem 4).

// BFS returns the distance from src to every node; unreachable nodes get -1.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum BFS distance from src to any node.
func (g *Graph) Eccentricity(src int) int {
	ecc := 0
	for _, d := range g.BFS(src) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the maximum eccentricity over all nodes. O(N·(N+M)).
func (g *Graph) Diameter() int {
	diam := 0
	for p := 0; p < g.N(); p++ {
		if e := g.Eccentricity(p); e > diam {
			diam = e
		}
	}
	return diam
}

// BFSTree returns, for every node, its parent in a BFS tree rooted at root
// (parent[root] = -1). Ties are broken toward the smallest-ID parent because
// neighbor lists are in ascending order. The tree-based PIF baseline runs on
// this tree.
func (g *Graph) BFSTree(root int) []int {
	parent := make([]int, g.N())
	dist := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
		dist[i] = -1
	}
	dist[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent
}

// IsChordlessPath reports whether the node sequence is an elementary
// chordless path in g: consecutive nodes adjacent, all nodes distinct, and no
// edge between non-consecutive nodes. This is the property the proof of
// Theorem 4 establishes for every ParentPath the algorithm builds.
func (g *Graph) IsChordlessPath(path []int) bool {
	seen := make(map[int]bool, len(path))
	for i, u := range path {
		if seen[u] {
			return false
		}
		seen[u] = true
		if i > 0 && !g.HasEdge(path[i-1], u) {
			return false
		}
	}
	for i := 0; i < len(path); i++ {
		for j := i + 2; j < len(path); j++ {
			if g.HasEdge(path[i], path[j]) {
				return false
			}
		}
	}
	return true
}

// LongestChordlessPathFrom returns the length (number of edges) of the
// longest elementary chordless path ending at root. Exponential-time exact
// search; intended for the small graphs used in tests and experiments that
// validate the Theorem 4 bound h ≤ longest-chordless-path.
func (g *Graph) LongestChordlessPathFrom(root int) int {
	onPath := make([]bool, g.N())
	path := []int{root}
	onPath[root] = true
	best := 0
	var dfs func(u, depth int)
	dfs = func(u, depth int) {
		if depth > best {
			best = depth
		}
		for _, v := range g.adj[u] {
			if onPath[v] || !g.chordFree(path, v) {
				continue
			}
			onPath[v] = true
			path = append(path, v)
			dfs(v, depth+1)
			path = path[:len(path)-1]
			onPath[v] = false
		}
	}
	dfs(root, 0)
	return best
}

// chordFree reports whether appending v to path keeps it chordless: v must
// be adjacent only to the last node of the path.
func (g *Graph) chordFree(path []int, v int) bool {
	for i := 0; i < len(path)-1; i++ {
		if g.HasEdge(path[i], v) {
			return false
		}
	}
	return true
}
