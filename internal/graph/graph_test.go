package graph_test

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"snappif/internal/graph"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges [][2]int
	}{
		{name: "zero nodes", n: 0},
		{name: "negative node in edge", n: 3, edges: [][2]int{{-1, 0}, {0, 1}, {1, 2}}},
		{name: "node out of range", n: 3, edges: [][2]int{{0, 3}, {0, 1}, {1, 2}}},
		{name: "self loop", n: 2, edges: [][2]int{{0, 0}, {0, 1}}},
		{name: "duplicate edge", n: 2, edges: [][2]int{{0, 1}, {1, 0}}},
		{name: "disconnected", n: 4, edges: [][2]int{{0, 1}, {2, 3}}},
		{name: "isolated node", n: 3, edges: [][2]int{{0, 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := graph.New("bad", tt.n, tt.edges); err == nil {
				t.Fatalf("New accepted invalid graph n=%d edges=%v", tt.n, tt.edges)
			}
		})
	}
}

func TestSingletonGraph(t *testing.T) {
	g, err := graph.New("single", 1, nil)
	if err != nil {
		t.Fatalf("singleton rejected: %v", err)
	}
	if g.N() != 1 || g.M() != 0 || g.Diameter() != 0 {
		t.Fatalf("singleton: N=%d M=%d diam=%d", g.N(), g.M(), g.Diameter())
	}
}

func TestBuilderShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		build    func() (*graph.Graph, error)
		wantN    int
		wantM    int
		wantDiam int
	}{
		{func() (*graph.Graph, error) { return graph.Line(5) }, 5, 4, 4},
		{func() (*graph.Graph, error) { return graph.Ring(6) }, 6, 6, 3},
		{func() (*graph.Graph, error) { return graph.Star(7) }, 7, 6, 2},
		{func() (*graph.Graph, error) { return graph.Complete(5) }, 5, 10, 1},
		{func() (*graph.Graph, error) { return graph.Grid(3, 4) }, 12, 17, 5},
		{func() (*graph.Graph, error) { return graph.Torus(3, 3) }, 9, 18, 2},
		{func() (*graph.Graph, error) { return graph.Hypercube(4) }, 16, 32, 4},
		{func() (*graph.Graph, error) { return graph.BinaryTree(7) }, 7, 6, 4},
		{func() (*graph.Graph, error) { return graph.Caterpillar(3, 2) }, 9, 8, 4},
		{func() (*graph.Graph, error) { return graph.Lollipop(4, 3) }, 7, 9, 4},
		{func() (*graph.Graph, error) { return graph.RandomTree(10, rng) }, 10, 9, -1},
		{func() (*graph.Graph, error) { return graph.Wheel(7) }, 7, 12, 2},
		{func() (*graph.Graph, error) { return graph.Circulant(8, []int{1, 2}) }, 8, 16, 2},
		{func() (*graph.Graph, error) { return graph.Barbell(3, 2) }, 8, 9, 5},
		{func() (*graph.Graph, error) { return graph.CompleteBipartite(2, 3) }, 5, 6, 2},
		{func() (*graph.Graph, error) { return graph.KaryTree(3, 13) }, 13, 12, 4},
	}
	for _, tt := range tests {
		g, err := tt.build()
		if err != nil {
			t.Fatal(err)
		}
		t.Run(g.Name(), func(t *testing.T) {
			if g.N() != tt.wantN {
				t.Errorf("N = %d, want %d", g.N(), tt.wantN)
			}
			if g.M() != tt.wantM {
				t.Errorf("M = %d, want %d", g.M(), tt.wantM)
			}
			if tt.wantDiam >= 0 {
				if d := g.Diameter(); d != tt.wantDiam {
					t.Errorf("diameter = %d, want %d", d, tt.wantDiam)
				}
			}
		})
	}
}

func TestBuilderRejections(t *testing.T) {
	cases := []func() (*graph.Graph, error){
		func() (*graph.Graph, error) { return graph.Ring(2) },
		func() (*graph.Graph, error) { return graph.Grid(0, 3) },
		func() (*graph.Graph, error) { return graph.Torus(2, 3) },
		func() (*graph.Graph, error) { return graph.Hypercube(0) },
		func() (*graph.Graph, error) { return graph.Hypercube(21) },
		func() (*graph.Graph, error) { return graph.Caterpillar(0, 1) },
		func() (*graph.Graph, error) { return graph.Lollipop(2, 1) },
		func() (*graph.Graph, error) { return graph.Lollipop(3, 0) },
		func() (*graph.Graph, error) {
			return graph.RandomConnected(0, 0.5, rand.New(rand.NewSource(1)))
		},
		func() (*graph.Graph, error) {
			return graph.RandomConnected(5, 1.5, rand.New(rand.NewSource(1)))
		},
		func() (*graph.Graph, error) { return graph.Line(0) },
		func() (*graph.Graph, error) { return graph.Wheel(3) },
		func() (*graph.Graph, error) { return graph.Circulant(2, []int{1}) },
		func() (*graph.Graph, error) { return graph.Circulant(8, []int{0}) },
		func() (*graph.Graph, error) { return graph.Circulant(8, []int{5}) },
		func() (*graph.Graph, error) { return graph.Barbell(2, 1) },
		func() (*graph.Graph, error) { return graph.CompleteBipartite(0, 3) },
		func() (*graph.Graph, error) { return graph.KaryTree(1, 5) },
	}
	for i, build := range cases {
		if _, err := build(); err == nil {
			t.Errorf("case %d: invalid parameters accepted", i)
		}
	}
}

func TestNeighborsSortedAndConsistent(t *testing.T) {
	g, err := graph.RandomConnected(20, 0.3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < g.N(); p++ {
		nb := g.Neighbors(p)
		if !sort.IntsAreSorted(nb) {
			t.Fatalf("neighbors of %d not sorted: %v", p, nb)
		}
		for _, q := range nb {
			if !g.HasEdge(p, q) || !g.HasEdge(q, p) {
				t.Fatalf("edge (%d,%d) not symmetric", p, q)
			}
		}
		if g.Degree(p) != len(nb) {
			t.Fatalf("degree mismatch at %d", p)
		}
		if g.HasEdge(p, p) {
			t.Fatalf("self edge reported at %d", p)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g, err := graph.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	if len(edges) != g.M() {
		t.Fatalf("Edges returned %d, want %d", len(edges), g.M())
	}
	g2, err := graph.New("copy", g.N(), edges)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatalf("round trip lost edges: %d vs %d", g2.M(), g.M())
	}
}

func TestBFSAndEccentricity(t *testing.T) {
	g, err := graph.Line(6)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFS(0)
	for i, d := range dist {
		if d != i {
			t.Fatalf("BFS(0)[%d] = %d, want %d", i, d, i)
		}
	}
	if e := g.Eccentricity(2); e != 3 {
		t.Fatalf("ecc(2) = %d, want 3", e)
	}
	if e := g.Eccentricity(0); e != 5 {
		t.Fatalf("ecc(0) = %d, want 5", e)
	}
}

func TestBFSTreeProperties(t *testing.T) {
	g, err := graph.RandomConnected(25, 0.2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	parent := g.BFSTree(4)
	dist := g.BFS(4)
	for p := 0; p < g.N(); p++ {
		if p == 4 {
			if parent[p] != -1 {
				t.Fatalf("root parent = %d, want -1", parent[p])
			}
			continue
		}
		if !g.HasEdge(p, parent[p]) {
			t.Fatalf("tree edge (%d,%d) not in graph", p, parent[p])
		}
		if dist[p] != dist[parent[p]]+1 {
			t.Fatalf("BFS tree not shortest-path at %d", p)
		}
	}
}

func TestChordlessPathChecks(t *testing.T) {
	g, err := graph.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		path []int
		want bool
	}{
		{path: []int{0, 1, 2}, want: true},
		{path: []int{0, 1, 2, 3}, want: true},
		{path: []int{0}, want: true},
		{path: nil, want: true},
		{path: []int{0, 2}, want: false},             // not adjacent
		{path: []int{0, 1, 0}, want: false},          // repeated node
		{path: []int{5, 0, 1, 2, 3, 4}, want: false}, // chord 5–4 closes the ring
	}
	for _, tt := range tests {
		if got := g.IsChordlessPath(tt.path); got != tt.want {
			t.Errorf("IsChordlessPath(%v) = %v, want %v", tt.path, got, tt.want)
		}
	}
}

func TestLongestChordlessPath(t *testing.T) {
	line, err := graph.Line(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := line.LongestChordlessPathFrom(0); got != 6 {
		t.Errorf("line LCP from end = %d, want 6", got)
	}
	ring, err := graph.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	// On a cycle the longest chordless path from any node is n-2 edges
	// (going almost all the way around closes a chord with the start).
	if got := ring.LongestChordlessPathFrom(0); got != 4 {
		t.Errorf("ring-6 LCP = %d, want 4", got)
	}
	comp, err := graph.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := comp.LongestChordlessPathFrom(0); got != 1 {
		t.Errorf("K5 LCP = %d, want 1", got)
	}
}

func TestDegreeStats(t *testing.T) {
	g, err := graph.Star(6)
	if err != nil {
		t.Fatal(err)
	}
	minDeg, maxDeg, avg := g.DegreeStats()
	if minDeg != 1 || maxDeg != 5 {
		t.Fatalf("degree stats = (%d,%d), want (1,5)", minDeg, maxDeg)
	}
	if avg != 2*float64(g.M())/float64(g.N()) {
		t.Fatalf("avg degree = %v", avg)
	}
}

func TestDOTOutput(t *testing.T) {
	g, err := graph.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{"graph \"line-3\"", "0 -- 1;", "1 -- 2;"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// Property: RandomConnected always yields a connected simple graph whose
// node count and neighbor symmetry hold, for any seed and density.
func TestRandomConnectedProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%40) + 1
		p := float64(pRaw) / 255
		g, err := graph.RandomConnected(n, p, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		if g.N() != n {
			return false
		}
		// Connectivity: BFS reaches everything.
		for _, d := range g.BFS(0) {
			if d < 0 {
				return false
			}
		}
		// Symmetry.
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the BFS tree of any random graph is a spanning tree (N-1 edges,
// all nodes reach the root).
func TestBFSTreeSpansProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		g, err := graph.RandomConnected(n, 0.2, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		root := int(seed%int64(n)+int64(n)) % n
		parent := g.BFSTree(root)
		for p := 0; p < n; p++ {
			cur, hops := p, 0
			for cur != root {
				cur = parent[cur]
				hops++
				if hops > n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid graph")
		}
	}()
	graph.MustNew("bad", 2, nil) // disconnected
}

func TestRandomSparse(t *testing.T) {
	for _, tc := range []struct{ n, extra int }{
		{1, 0}, {2, 0}, {10, 0}, {10, 15}, {500, 1000},
	} {
		rng := rand.New(rand.NewSource(7))
		g, err := graph.RandomSparse(tc.n, tc.extra, rng)
		if err != nil {
			t.Fatalf("RandomSparse(%d,%d): %v", tc.n, tc.extra, err)
		}
		if g.N() != tc.n {
			t.Fatalf("RandomSparse(%d,%d): N=%d", tc.n, tc.extra, g.N())
		}
		if g.M() < tc.n-1 || g.M() > tc.n-1+tc.extra {
			t.Fatalf("RandomSparse(%d,%d): M=%d outside [n-1, n-1+extra]", tc.n, tc.extra, g.M())
		}
		// Determinism: the same stream rebuilds the same graph.
		g2, err := graph.RandomSparse(tc.n, tc.extra, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
			t.Fatalf("RandomSparse(%d,%d) not deterministic", tc.n, tc.extra)
		}
	}
	if _, err := graph.RandomSparse(0, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("RandomSparse accepted n=0")
	}
	if _, err := graph.RandomSparse(3, -1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("RandomSparse accepted extra=-1")
	}
}
