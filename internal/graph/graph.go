// Package graph provides the network substrate for the PIF protocols: simple,
// connected, undirected graphs with per-node ordered neighbor lists.
//
// The paper's system model (Section 2) assumes an arbitrary connected topology
// of N processors connected by bidirectional links, where each processor p
// stores its neighbor labels in a set Neig_p arranged in an arbitrary total
// order ≺_p. This package realizes that model: a Graph stores, for every node,
// its adjacency list sorted in the node's local order (ascending node ID by
// construction, which is one valid arbitrary order), and exposes the metrics
// the complexity analysis needs (diameter, eccentricity, BFS trees, longest
// chordless path bounds).
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrDisconnected is returned by validation when the graph is not connected.
// PIF requires a connected network: a broadcast must be able to reach every
// processor.
var ErrDisconnected = errors.New("graph: not connected")

// Graph is an immutable simple undirected graph over nodes 0..N()-1.
//
// The zero value is an empty graph; use New or one of the topology builders.
type Graph struct {
	name string
	adj  [][]int
	m    int // number of undirected edges
}

// New builds a graph with n nodes and the given undirected edges. Self-loops
// and duplicate edges are rejected. The neighbor order of every node is
// ascending node ID (one concrete instance of the paper's arbitrary local
// order ≺_p).
//
// Duplicate detection works by sorting each adjacency list and scanning for
// equal neighbors rather than through a hash set of edges: the large-N
// engine builds million-node topologies, where a per-edge map insert
// dominated construction time and memory.
func New(name string, n int, edges [][2]int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph %q: need at least one node, got %d", name, n)
	}
	// First pass: validate endpoints and count degrees so every adjacency
	// list is allocated exactly once at its final length.
	deg := make([]int, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph %q: edge (%d,%d) out of range [0,%d)", name, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("graph %q: self-loop at node %d", name, u)
		}
		deg[u]++
		deg[v]++
	}
	adj := make([][]int, n)
	flat := make([]int, 2*len(edges))
	off := 0
	for p, d := range deg {
		adj[p] = flat[off : off : off+d]
		off += d
	}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for u, nb := range adj {
		sort.Ints(nb)
		for i := 1; i < len(nb); i++ {
			if nb[i] == nb[i-1] {
				return nil, fmt.Errorf("graph %q: duplicate edge (%d,%d)", name, min(u, nb[i]), max(u, nb[i]))
			}
		}
	}
	g := &Graph{name: name, adj: adj, m: len(edges)}
	if !g.connected() {
		return nil, fmt.Errorf("graph %q: %w", name, ErrDisconnected)
	}
	return g, nil
}

// MustNew is New but panics on error. Intended for tests and for builders
// whose construction is correct by design.
func MustNew(name string, n int, edges [][2]int) *Graph {
	g, err := New(name, n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Name returns the human-readable topology name (e.g. "ring-16").
func (g *Graph) Name() string { return g.name }

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Neighbors returns node p's adjacency list in p's local order ≺_p
// (ascending node ID). The returned slice is owned by the graph and must not
// be modified; this is a deliberate hot-path exception to copy-at-boundaries,
// as every guard evaluation in the simulator walks neighbor lists.
func (g *Graph) Neighbors(p int) []int { return g.adj[p] }

// Degree returns the number of neighbors of p.
func (g *Graph) Degree(p int) int { return len(g.adj[p]) }

// HasEdge reports whether nodes u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	nb := g.adj[u]
	i := sort.SearchInts(nb, v)
	return i < len(nb) && nb[i] == v
}

// Edges returns a fresh copy of the edge list with u < v in each pair,
// sorted lexicographically.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u, nb := range g.adj {
		for _, v := range nb {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// String renders a short description like "ring-8{n=8 m=8}".
func (g *Graph) String() string {
	return fmt.Sprintf("%s{n=%d m=%d}", g.name, g.N(), g.m)
}

// DegreeStats returns the minimum, maximum, and average degree.
func (g *Graph) DegreeStats() (minDeg, maxDeg int, avg float64) {
	minDeg = g.N()
	for p := range g.adj {
		d := len(g.adj[p])
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	if g.N() > 0 {
		avg = 2 * float64(g.m) / float64(g.N())
	}
	return minDeg, maxDeg, avg
}

// connected reports whether the graph is connected (single component).
func (g *Graph) connected() bool {
	if g.N() == 0 {
		return false
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// DOT renders the graph in Graphviz DOT format, for debugging and docs.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", g.name)
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %d -- %d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}
