package graph_test

import (
	"math/rand"
	"testing"

	"snappif/internal/graph"
)

func benchGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	g, err := graph.RandomConnected(n, 0.05, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := g.BFS(i % g.N()); d[0] < 0 && i%g.N() != 0 {
			b.Fatal("unreachable")
		}
	}
}

func BenchmarkDiameter(b *testing.B) {
	g := benchGraph(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Diameter() <= 0 {
			b.Fatal("bad diameter")
		}
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(i%g.N(), (i*7)%g.N())
	}
}

func BenchmarkRandomConnected(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < b.N; i++ {
		if _, err := graph.RandomConnected(256, 0.05, rng); err != nil {
			b.Fatal(err)
		}
	}
}
