package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file provides the topology families used throughout the experiment
// harness. Each builder returns a connected simple graph and encodes one of
// the shapes that stress different aspects of the algorithm:
//
//   - Line / ring: maximal diameter, h ≈ N (worst case for 5h+5).
//   - Star / complete: minimal diameter; complete graphs exercise the
//     chordless-ParentPath property hardest (h stays 1 despite N-1 neighbors).
//   - Grid / torus / hypercube: intermediate diameter, many equal-level
//     parent candidates (exercises the min ≺_p tie-break).
//   - Trees / caterpillars: the tree-network special case the earlier
//     snap-stabilizing PIF papers [7,9] cover.
//   - Lollipop: clique + tail, mixes both regimes in one network.
//   - Random connected / random tree: the "arbitrary network" of the title.

// Line returns the path graph 0-1-…-(n-1).
func Line(n int) (*Graph, error) {
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return New(fmt.Sprintf("line-%d", n), n, edges)
}

// Ring returns the cycle graph on n ≥ 3 nodes.
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: ring needs n ≥ 3, got %d", n)
	}
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return New(fmt.Sprintf("ring-%d", n), n, edges)
}

// Star returns the star graph with center 0 and n-1 leaves.
func Star(n int) (*Graph, error) {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return New(fmt.Sprintf("star-%d", n), n, edges)
}

// Complete returns K_n.
func Complete(n int) (*Graph, error) {
	edges := make([][2]int, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return New(fmt.Sprintf("complete-%d", n), n, edges)
}

// Grid returns the rows×cols 2-D mesh.
func Grid(rows, cols int) (*Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("graph: grid needs positive dims, got %d×%d", rows, cols)
	}
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return New(fmt.Sprintf("grid-%dx%d", rows, cols), rows*cols, edges)
}

// Torus returns the rows×cols 2-D torus (mesh with wraparound); both
// dimensions must be ≥ 3 to keep the graph simple.
func Torus(rows, cols int) (*Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: torus needs dims ≥ 3, got %d×%d", rows, cols)
	}
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			edges = append(edges, [2]int{id(r, c), id(r, (c+1)%cols)})
			edges = append(edges, [2]int{id(r, c), id((r+1)%rows, c)})
		}
	}
	return New(fmt.Sprintf("torus-%dx%d", rows, cols), rows*cols, edges)
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
func Hypercube(dim int) (*Graph, error) {
	if dim < 1 || dim > 20 {
		return nil, fmt.Errorf("graph: hypercube dim must be in [1,20], got %d", dim)
	}
	n := 1 << dim
	var edges [][2]int
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << b)
			if u < v {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return New(fmt.Sprintf("hypercube-%d", dim), n, edges)
}

// BinaryTree returns the complete binary tree with n nodes (heap layout:
// node i has children 2i+1 and 2i+2).
func BinaryTree(n int) (*Graph, error) {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{(i - 1) / 2, i})
	}
	return New(fmt.Sprintf("bintree-%d", n), n, edges)
}

// Caterpillar returns a spine of length spine with legs leaves hanging off
// every spine node: the worst-case tree family in the tree-PIF literature.
func Caterpillar(spine, legs int) (*Graph, error) {
	if spine < 1 || legs < 0 {
		return nil, fmt.Errorf("graph: caterpillar needs spine ≥ 1, legs ≥ 0, got %d,%d", spine, legs)
	}
	n := spine * (1 + legs)
	var edges [][2]int
	for i := 0; i+1 < spine; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			edges = append(edges, [2]int{i, next})
			next++
		}
	}
	return New(fmt.Sprintf("caterpillar-%dx%d", spine, legs), n, edges)
}

// Lollipop returns K_clique with a path of tail extra nodes attached to
// node 0: it mixes a dense region (h small) with a long chordless tail.
func Lollipop(clique, tail int) (*Graph, error) {
	if clique < 3 || tail < 1 {
		return nil, fmt.Errorf("graph: lollipop needs clique ≥ 3, tail ≥ 1, got %d,%d", clique, tail)
	}
	var edges [][2]int
	for i := 0; i < clique; i++ {
		for j := i + 1; j < clique; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	prev := 0
	for t := 0; t < tail; t++ {
		edges = append(edges, [2]int{prev, clique + t})
		prev = clique + t
	}
	return New(fmt.Sprintf("lollipop-%d+%d", clique, tail), clique+tail, edges)
}

// Wheel returns the wheel graph: a hub (node 0) connected to every node of
// an outer (n-1)-cycle.
func Wheel(n int) (*Graph, error) {
	if n < 4 {
		return nil, fmt.Errorf("graph: wheel needs n ≥ 4, got %d", n)
	}
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
		next := i + 1
		if next == n {
			next = 1
		}
		edges = append(edges, [2]int{i, next})
	}
	return New(fmt.Sprintf("wheel-%d", n), n, edges)
}

// Circulant returns the circulant graph C_n(jumps): node i is adjacent to
// i±j (mod n) for every jump j. With jumps {1,2,…} these are dense
// expander-ish rings.
func Circulant(n int, jumps []int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: circulant needs n ≥ 3, got %d", n)
	}
	present := make(map[[2]int]bool)
	var edges [][2]int
	for _, j := range jumps {
		if j <= 0 || 2*j >= n+1 {
			return nil, fmt.Errorf("graph: circulant jump %d outside (0, n/2]", j)
		}
		for i := 0; i < n; i++ {
			u, v := i, (i+j)%n
			if u > v {
				u, v = v, u
			}
			if u == v || present[[2]int{u, v}] {
				continue
			}
			present[[2]int{u, v}] = true
			edges = append(edges, [2]int{u, v})
		}
	}
	return New(fmt.Sprintf("circulant-%d-%v", n, jumps), n, edges)
}

// Barbell returns two k-cliques joined by a path of bridge nodes — two
// dense communities with a thin cut, the classic stress case for
// wave-based protocols.
func Barbell(clique, bridge int) (*Graph, error) {
	if clique < 3 || bridge < 1 {
		return nil, fmt.Errorf("graph: barbell needs clique ≥ 3, bridge ≥ 1, got %d,%d", clique, bridge)
	}
	n := 2*clique + bridge
	var edges [][2]int
	for i := 0; i < clique; i++ {
		for j := i + 1; j < clique; j++ {
			edges = append(edges, [2]int{i, j})
			edges = append(edges, [2]int{clique + bridge + i, clique + bridge + j})
		}
	}
	prev := 0
	for b := 0; b < bridge; b++ {
		edges = append(edges, [2]int{prev, clique + b})
		prev = clique + b
	}
	edges = append(edges, [2]int{prev, clique + bridge})
	return New(fmt.Sprintf("barbell-%d+%d", clique, bridge), n, edges)
}

// CompleteBipartite returns K_{a,b}: every one of the first a nodes linked
// to every one of the remaining b nodes.
func CompleteBipartite(a, b int) (*Graph, error) {
	if a < 1 || b < 1 {
		return nil, fmt.Errorf("graph: bipartite needs positive parts, got %d,%d", a, b)
	}
	var edges [][2]int
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			edges = append(edges, [2]int{i, a + j})
		}
	}
	return New(fmt.Sprintf("bipartite-%dx%d", a, b), a+b, edges)
}

// KaryTree returns the complete k-ary tree with n nodes (node i's children
// are k·i+1 … k·i+k).
func KaryTree(k, n int) (*Graph, error) {
	if k < 2 {
		return nil, fmt.Errorf("graph: k-ary tree needs k ≥ 2, got %d", k)
	}
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{(i - 1) / k, i})
	}
	return New(fmt.Sprintf("%d-ary-tree-%d", k, n), n, edges)
}

// RandomConnected returns a connected Erdős–Rényi-style graph: a uniformly
// random spanning tree plus each remaining edge independently with
// probability p. Deterministic for a given rng stream.
func RandomConnected(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: random graph needs n ≥ 1, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: edge probability %v outside [0,1]", p)
	}
	present := make(map[[2]int]bool)
	var edges [][2]int
	add := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if !present[[2]int{u, v}] {
			present[[2]int{u, v}] = true
			edges = append(edges, [2]int{u, v})
		}
	}
	// Random spanning tree: attach each node to a uniformly random earlier
	// node of a random permutation.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		add(perm[i], perm[rng.Intn(i)])
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				add(u, v)
			}
		}
	}
	return New(fmt.Sprintf("random-%d-p%02.0f", n, p*100), n, edges)
}

// RandomSparse returns a connected random graph with a fixed edge budget: a
// uniformly random spanning tree plus up to extra additional uniformly
// random edges (duplicates and self-loops are discarded, so the realized
// extra-edge count can fall slightly short). Unlike RandomConnected, whose
// Erdős–Rényi pair loop is Θ(n²), construction is O((n+extra)·log) — the
// builder the scaling benchmarks use for 10⁵–10⁶-processor networks.
// Deterministic for a given rng stream.
func RandomSparse(n, extra int, rng *rand.Rand) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: random sparse graph needs n ≥ 1, got %d", n)
	}
	if extra < 0 {
		return nil, fmt.Errorf("graph: random sparse graph needs extra ≥ 0, got %d", extra)
	}
	edges := make([][2]int, 0, n-1+extra)
	add := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		edges = append(edges, [2]int{u, v})
	}
	// Random spanning tree: attach each node to a uniformly random earlier
	// node of a random permutation (same construction as RandomConnected).
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		add(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			add(u, v)
		}
	}
	// Sort-and-unique instead of a hash set: at n = 10⁶ the per-edge map
	// insert would dominate construction.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	uniq := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			uniq = append(uniq, e)
		}
	}
	return New(fmt.Sprintf("sparse-%d+%d", n, extra), n, uniq)
}

// RandomTree returns a uniformly-attached random tree on n nodes.
func RandomTree(n int, rng *rand.Rand) (*Graph, error) {
	g, err := RandomConnected(n, 0, rng)
	if err != nil {
		return nil, err
	}
	g.name = fmt.Sprintf("randomtree-%d", n)
	return g, nil
}
