package graph_test

import (
	"fmt"
	"log"

	"snappif/internal/graph"
)

func ExampleNew() {
	g, err := graph.New("triangle+tail", 4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g, "diameter:", g.Diameter(), "neighbors of 2:", g.Neighbors(2))
	// Output:
	// triangle+tail{n=4 m=4} diameter: 2 neighbors of 2: [0 1 3]
}

func ExampleGraph_BFSTree() {
	g, err := graph.Ring(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.BFSTree(0))
	// Output:
	// [-1 0 1 2 5 0]
}

func ExampleGraph_IsChordlessPath() {
	g, err := graph.Ring(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.IsChordlessPath([]int{0, 1, 2, 3}))
	fmt.Println(g.IsChordlessPath([]int{5, 0, 1, 2, 3, 4})) // edge 4–5 closes a chord
	// Output:
	// true
	// false
}

func ExampleLollipop() {
	g, err := graph.Lollipop(4, 3)
	if err != nil {
		log.Fatal(err)
	}
	minDeg, maxDeg, _ := g.DegreeStats()
	fmt.Printf("%s min-degree=%d max-degree=%d\n", g, minDeg, maxDeg)
	// Output:
	// lollipop-4+3{n=7 m=9} min-degree=1 max-degree=4
}
