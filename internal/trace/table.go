// Package trace provides the measurement substrate for the experiment
// harness: aligned text tables (the "rows the paper reports"), descriptive
// statistics, CSV export, and a step-event recorder for debugging and the
// examples.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table with an optional title.
type Table struct {
	// Title is printed above the table when non-empty.
	Title string

	headers []string
	rows    [][]string
}

// NewTable builds a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: append([]string(nil), headers...)}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(w, b.String())
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i, wd := range widths {
		rule[i] = strings.Repeat("-", wd)
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			out[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeLine(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// Markdown writes the table as a GitHub-flavored markdown table.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.headers, " | "))
	seps := make([]string, len(t.headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
}
