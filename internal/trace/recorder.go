package trace

import (
	"fmt"
	"io"
	"strings"

	"snappif/internal/obs"
	"snappif/internal/sim"
)

// StepEvent records the action executions of one computation step.
type StepEvent struct {
	// Step is the 1-based step index.
	Step int
	// Executed lists the (processor, action) pairs that ran.
	Executed []sim.Choice
}

// Recorder is a sim.Observer that keeps a bounded log of step events plus
// running totals; the examples and the CLI use it to narrate runs.
type Recorder struct {
	// ActionNames translates action IDs to labels (from
	// Protocol.ActionNames).
	ActionNames []string
	// Limit bounds the number of retained events (0 = unlimited). The drop
	// policy is keep-head: the first Limit steps are retained verbatim and
	// every later step is discarded, counted in Dropped. The head is the
	// interesting part of a PIF run — it holds the error-correction steps
	// after a corruption — and keeping a contiguous prefix means the
	// retained events still replay through sim.Replay. Running totals
	// (Moves) keep accumulating across dropped steps.
	Limit int

	// Events holds the retained step events.
	Events []StepEvent
	// Dropped counts events discarded due to Limit.
	Dropped int
	// Moves counts executions per action label.
	Moves map[string]int
}

var _ sim.Observer = (*Recorder)(nil)

// NewRecorder builds a Recorder for a protocol's actions.
func NewRecorder(p sim.Protocol, limit int) *Recorder {
	return &Recorder{
		ActionNames: p.ActionNames(),
		Limit:       limit,
		Moves:       make(map[string]int),
	}
}

// OnStep implements sim.Observer.
func (r *Recorder) OnStep(step int, executed []sim.Choice, _ *sim.Configuration) {
	for _, ch := range executed {
		r.Moves[r.ActionNames[ch.Action]]++
	}
	if r.Limit > 0 && len(r.Events) >= r.Limit {
		r.Dropped++
		return
	}
	r.Events = append(r.Events, StepEvent{
		Step:     step,
		Executed: append([]sim.Choice(nil), executed...),
	})
}

// Dump writes the event log to w, one step per line:
//
//	step    3: p1:B-action p4:B-action
func (r *Recorder) Dump(w io.Writer) {
	for _, ev := range r.Events {
		parts := make([]string, len(ev.Executed))
		for i, ch := range ev.Executed {
			parts[i] = fmt.Sprintf("p%d:%s", ch.Proc, r.ActionNames[ch.Action])
		}
		fmt.Fprintf(w, "step %4d: %s\n", ev.Step, strings.Join(parts, " "))
	}
	if r.Dropped > 0 {
		fmt.Fprintf(w, "… %d further steps not recorded (limit %d)\n", r.Dropped, r.Limit)
	}
}

// MovesTable renders the per-action move counts as a Table.
func (r *Recorder) MovesTable() *Table {
	t := NewTable("moves per action", "action", "moves")
	for _, name := range r.ActionNames {
		if n := r.Moves[name]; n > 0 {
			t.AddRow(name, n)
		}
	}
	return t
}

// Choices extracts the per-step executed choices, in the exact shape
// sim.Replay consumes: replaying them against the same protocol and
// initial configuration reproduces the recorded run.
func (r *Recorder) Choices() [][]sim.Choice {
	out := make([][]sim.Choice, 0, len(r.Events))
	for _, ev := range r.Events {
		out = append(out, append([]sim.Choice(nil), ev.Executed...))
	}
	return out
}

// JSON writes the recorded trace as JSONL in the internal/obs event schema
// — a header carrying the action names, one step event per retained step,
// and a summary with the running totals (Dropped included) — so recorder
// exports read back through obs.ReadTrace and the piftrace CLI like any
// other trace.
func (r *Recorder) JSON(w io.Writer) error {
	enc := obs.NewEncoder(w)
	enc.Meta(obs.Meta{Actions: r.ActionNames})
	lastStep := 0
	for _, ev := range r.Events {
		enc.Step(ev.Step, ev.Executed)
		lastStep = ev.Step
	}
	moves := 0
	for _, name := range r.ActionNames {
		moves += r.Moves[name]
	}
	enc.Summary(obs.Summary{
		Steps:          lastStep + r.Dropped,
		Moves:          moves,
		Dropped:        r.Dropped,
		MovesPerAction: r.Moves,
	})
	return enc.Err()
}
