package trace_test

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"snappif/internal/check"
	"snappif/internal/core"
	"snappif/internal/fault"
	"snappif/internal/graph"
	"snappif/internal/sim"
	"snappif/internal/trace"
)

// TestRecordReplayRoundTrip records a randomized corrupted-start run and
// replays it: the replay must reproduce the original bit for bit.
func TestRecordReplayRoundTrip(t *testing.T) {
	g, err := graph.RandomConnected(10, 0.3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}

	run := func(d sim.Daemon, rec *trace.Recorder) (sim.Result, *sim.Configuration) {
		pr := core.MustNew(g, 0)
		cfg := sim.NewConfiguration(g, pr)
		fault.UniformRandom().Apply(cfg, pr, rand.New(rand.NewSource(7)))
		obs := check.NewCycleObserver(pr)
		observers := []sim.Observer{obs}
		if rec != nil {
			observers = append(observers, rec)
		}
		res, err := sim.Run(cfg, pr, d, sim.Options{
			Seed:      11,
			Observers: observers,
			StopWhen:  obs.StopAfterCycles(2),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, cfg
	}

	protoForNames := core.MustNew(g, 0)
	rec := trace.NewRecorder(protoForNames, 0)
	orig, origCfg := run(sim.DistributedRandom{P: 0.5}, rec)

	replay := &sim.Replay{Script: rec.Choices()}
	redo, redoCfg := run(replay, nil)

	if orig.Steps != redo.Steps || orig.Moves != redo.Moves || orig.Rounds != redo.Rounds {
		t.Fatalf("replay diverged: %+v vs %+v", orig, redo)
	}
	for p := range origCfg.States {
		if core.At(origCfg, p) != core.At(redoCfg, p) {
			t.Fatalf("state of p%d diverged", p)
		}
	}
	if !replay.Exhausted() {
		t.Fatal("script not fully consumed")
	}
}

func TestRecorderJSON(t *testing.T) {
	g, err := graph.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	cfg := sim.NewConfiguration(g, pr)
	rec := trace.NewRecorder(pr, 0)
	obs := check.NewCycleObserver(pr)
	if _, err := sim.Run(cfg, pr, sim.Synchronous{}, sim.Options{
		Observers: []sim.Observer{rec, obs},
		StopWhen:  obs.StopAfterCycles(1),
	}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rec.JSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Events []struct {
			Step     int `json:"step"`
			Executed []struct {
				Proc   int    `json:"proc"`
				Action string `json:"action"`
			} `json:"executed"`
		} `json:"events"`
		Moves map[string]int `json:"movesPerAction"`
	}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded.Events) == 0 || decoded.Moves["B-action"] != 4 {
		t.Fatalf("unexpected trace: %d events, moves %v", len(decoded.Events), decoded.Moves)
	}
	if decoded.Events[0].Executed[0].Action != "B-action" {
		t.Fatalf("first action = %q", decoded.Events[0].Executed[0].Action)
	}
}
