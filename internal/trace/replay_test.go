package trace_test

import (
	"math/rand"
	"strings"
	"testing"

	"snappif/internal/check"
	"snappif/internal/core"
	"snappif/internal/fault"
	"snappif/internal/graph"
	"snappif/internal/obs"
	"snappif/internal/sim"
	"snappif/internal/trace"
)

// TestRecordReplayRoundTrip records a randomized corrupted-start run and
// replays it: the replay must reproduce the original bit for bit.
func TestRecordReplayRoundTrip(t *testing.T) {
	g, err := graph.RandomConnected(10, 0.3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}

	run := func(d sim.Daemon, rec *trace.Recorder) (sim.Result, *sim.Configuration) {
		pr := core.MustNew(g, 0)
		cfg := sim.NewConfiguration(g, pr)
		fault.UniformRandom().Apply(cfg, pr, rand.New(rand.NewSource(7)))
		obs := check.NewCycleObserver(pr)
		observers := []sim.Observer{obs}
		if rec != nil {
			observers = append(observers, rec)
		}
		res, err := sim.Run(cfg, pr, d, sim.Options{
			Seed:      11,
			Observers: observers,
			StopWhen:  obs.StopAfterCycles(2),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, cfg
	}

	protoForNames := core.MustNew(g, 0)
	rec := trace.NewRecorder(protoForNames, 0)
	orig, origCfg := run(sim.DistributedRandom{P: 0.5}, rec)

	replay := &sim.Replay{Script: rec.Choices()}
	redo, redoCfg := run(replay, nil)

	if orig.Steps != redo.Steps || orig.Moves != redo.Moves || orig.Rounds != redo.Rounds {
		t.Fatalf("replay diverged: %+v vs %+v", orig, redo)
	}
	for p := range origCfg.States {
		if core.At(origCfg, p) != core.At(redoCfg, p) {
			t.Fatalf("state of p%d diverged", p)
		}
	}
	if !replay.Exhausted() {
		t.Fatal("script not fully consumed")
	}
}

// TestRecorderJSON checks that the recorder's export is a JSONL event trace
// in the obs schema: header with action names, one step event per retained
// step, and a summary with per-action totals.
func TestRecorderJSON(t *testing.T) {
	g, err := graph.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	cfg := sim.NewConfiguration(g, pr)
	rec := trace.NewRecorder(pr, 0)
	cyc := check.NewCycleObserver(pr)
	res, err := sim.Run(cfg, pr, sim.Synchronous{}, sim.Options{
		Observers: []sim.Observer{rec, cyc},
		StopWhen:  cyc.StopAfterCycles(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rec.JSON(&b); err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("recorder export is not a readable trace: %v", err)
	}
	if tr.Meta == nil || len(tr.Meta.Actions) != len(pr.ActionNames()) {
		t.Fatalf("header lacks action names: %+v", tr.Meta)
	}
	steps := 0
	for _, ev := range tr.Events {
		if ev.T == "step" {
			steps++
			if ev.I != steps {
				t.Fatalf("step events out of order: %d-th has i=%d", steps, ev.I)
			}
		}
	}
	if steps != res.Steps {
		t.Fatalf("export has %d step events, run had %d steps", steps, res.Steps)
	}
	if tr.Summary == nil || tr.Summary.MovesPerAction["B-action"] != 4 {
		t.Fatalf("summary wrong: %+v", tr.Summary)
	}
	if tr.Summary.Steps != res.Steps || tr.Summary.Moves != res.Moves {
		t.Fatalf("summary totals %d/%d, run %d/%d",
			tr.Summary.Steps, tr.Summary.Moves, res.Steps, res.Moves)
	}
}

// TestRecorderLimitDropsTail pins the drop policy: with Limit k, the first
// k steps are kept verbatim (a replayable prefix), later steps are only
// counted, and running totals keep accumulating.
func TestRecorderLimitDropsTail(t *testing.T) {
	g, err := graph.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	cfg := sim.NewConfiguration(g, pr)
	const limit = 10
	rec := trace.NewRecorder(pr, limit)
	res, err := sim.Run(cfg, pr, sim.Synchronous{}, sim.Options{
		Observers: []sim.Observer{rec},
		StopWhen:  func(rs *sim.RunState) bool { return rs.Steps >= 40 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != limit {
		t.Fatalf("retained %d events, want %d", len(rec.Events), limit)
	}
	for i, ev := range rec.Events {
		if ev.Step != i+1 {
			t.Fatalf("event %d is step %d; the head must be contiguous", i, ev.Step)
		}
	}
	if rec.Dropped != res.Steps-limit {
		t.Fatalf("dropped %d, want %d", rec.Dropped, res.Steps-limit)
	}
	total := 0
	for _, n := range rec.Moves {
		total += n
	}
	if total != res.Moves {
		t.Fatalf("move totals stopped at the limit: %d, want %d", total, res.Moves)
	}

	// The export records the full-run totals next to the truncated events.
	var b strings.Builder
	if err := rec.JSON(&b); err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Summary == nil || tr.Summary.Dropped != rec.Dropped || tr.Summary.Steps != res.Steps {
		t.Fatalf("summary does not record the drop: %+v", tr.Summary)
	}

	// The retained prefix must replay: the first `limit` steps of a fresh
	// run under sim.Replay reproduce the recorded choices.
	cfg2 := sim.NewConfiguration(g, pr)
	rec2 := trace.NewRecorder(pr, 0)
	if _, err := sim.Run(cfg2, pr, &sim.Replay{Script: rec.Choices()}, sim.Options{
		Observers: []sim.Observer{rec2},
		StopWhen:  func(rs *sim.RunState) bool { return rs.Steps >= limit },
	}); err != nil {
		t.Fatal(err)
	}
	for i := range rec.Events {
		a, b := rec.Events[i], rec2.Events[i]
		if a.Step != b.Step || len(a.Executed) != len(b.Executed) {
			t.Fatalf("replayed prefix diverges at step %d", a.Step)
		}
		for j := range a.Executed {
			if a.Executed[j] != b.Executed[j] {
				t.Fatalf("replayed prefix diverges at step %d choice %d", a.Step, j)
			}
		}
	}
}

// TestRecorderJSONByteIdentical is the byte-level determinism regression
// for the recorder's export path: two identical runs (same topology,
// protocol, daemon, seed) must serialize to exactly the same JSONL bytes.
func TestRecorderJSONByteIdentical(t *testing.T) {
	render := func() string {
		g, err := graph.RandomConnected(9, 0.35, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		pr := core.MustNew(g, 0)
		cfg := sim.NewConfiguration(g, pr)
		fault.UniformRandom().Apply(cfg, pr, rand.New(rand.NewSource(2)))
		rec := trace.NewRecorder(pr, 0)
		cyc := check.NewCycleObserver(pr)
		if _, err := sim.Run(cfg, pr, sim.DistributedRandom{P: 0.5}, sim.Options{
			Seed:      13,
			Observers: []sim.Observer{rec, cyc},
			StopWhen:  cyc.StopAfterCycles(1),
		}); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := rec.JSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("identical runs exported differently:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}
