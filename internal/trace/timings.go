package trace

import (
	"sort"
	"sync"
	"time"
)

// Timing is one labeled wall-clock measurement.
type Timing struct {
	// Label identifies the measured unit (e.g. "E1/ring-16").
	Label string `json:"label"`
	// Seconds is the measured wall-clock duration.
	Seconds float64 `json:"seconds"`
}

// Timings collects labeled wall-clock durations from concurrent producers
// (the experiment harness records one entry per table cell). The zero value
// is ready to use; all methods are safe for concurrent use.
type Timings struct {
	mu      sync.Mutex
	entries []Timing
}

// Add records one measurement.
func (t *Timings) Add(label string, d time.Duration) {
	t.mu.Lock()
	t.entries = append(t.entries, Timing{Label: label, Seconds: d.Seconds()})
	t.mu.Unlock()
}

// Entries returns a copy of all measurements sorted by label (insertion
// order is nondeterministic under a parallel harness).
func (t *Timings) Entries() []Timing {
	t.mu.Lock()
	out := append([]Timing(nil), t.entries...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// Total returns the summed duration of all measurements — under a parallel
// harness this is CPU-ish time, larger than the wall clock.
func (t *Timings) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s float64
	for _, e := range t.entries {
		s += e.Seconds
	}
	return time.Duration(s * float64(time.Second))
}

// Len returns the number of measurements.
func (t *Timings) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}
