package trace

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates integer observations (rounds, moves, heights) and
// reports descriptive statistics.
type Sample struct {
	xs []int
}

// Add appends an observation.
func (s *Sample) Add(x int) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() int {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() int {
	m := 0
	for i, x := range s.xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range s.xs {
		sum += x
	}
	return float64(sum) / float64(len(s.xs))
}

// Stddev returns the population standard deviation (0 when empty).
func (s *Sample) Stddev() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	mean := s.Mean()
	var acc float64
	for _, x := range s.xs {
		d := float64(x) - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s.xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using the
// nearest-rank method (0 when empty).
func (s *Sample) Percentile(p float64) int {
	if len(s.xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), s.xs...)
	sort.Ints(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// String summarizes the sample as "mean±sd [min,max] n=k".
func (s *Sample) String() string {
	return fmt.Sprintf("%.1f±%.1f [%d,%d] n=%d", s.Mean(), s.Stddev(), s.Min(), s.Max(), s.N())
}
