package trace_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"snappif/internal/graph"
	"snappif/internal/sim"
	"snappif/internal/trace"
)

func TestTableRender(t *testing.T) {
	tbl := trace.NewTable("demo", "name", "value")
	tbl.AddRow("alpha", 1)
	tbl.AddRow("b", 22.5)
	out := tbl.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "alpha  1") {
		t.Fatalf("row misaligned: %q", lines[3])
	}
	if !strings.Contains(lines[4], "22.5") {
		t.Fatalf("float not rendered to one decimal: %q", lines[4])
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tbl := trace.NewTable("", "a", "b")
	tbl.AddRow(`hello, "world"`, 3)
	var b strings.Builder
	if err := tbl.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"hello, \"\"world\"\"\",3\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := trace.NewTable("", "x", "y")
	tbl.AddRow(1, 2)
	var b strings.Builder
	tbl.Markdown(&b)
	want := "| x | y |\n| --- | --- |\n| 1 | 2 |\n"
	if b.String() != want {
		t.Fatalf("markdown = %q", b.String())
	}
}

func TestSampleStats(t *testing.T) {
	var s trace.Sample
	if s.N() != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample not all-zero")
	}
	if s.Percentile(50) != 0 {
		t.Fatal("empty percentile not zero")
	}
	for _, x := range []int{4, 8, 6, 2} {
		s.Add(x)
	}
	if s.N() != 4 || s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("n=%d min=%d max=%d", s.N(), s.Min(), s.Max())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if got := s.Stddev(); math.Abs(got-math.Sqrt(5)) > 1e-9 {
		t.Fatalf("stddev = %v, want √5", got)
	}
	if s.Percentile(0) != 2 || s.Percentile(50) != 4 || s.Percentile(100) != 8 {
		t.Fatalf("percentiles: %d %d %d", s.Percentile(0), s.Percentile(50), s.Percentile(100))
	}
	if !strings.Contains(s.String(), "n=4") {
		t.Fatalf("String() = %q", s.String())
	}
}

// Property: Min ≤ Percentile(p) ≤ Max and Min ≤ Mean ≤ Max for any sample.
func TestSampleStatsProperty(t *testing.T) {
	f := func(xs []int16, pRaw uint8) bool {
		if len(xs) == 0 {
			return true
		}
		var s trace.Sample
		for _, x := range xs {
			s.Add(int(x))
		}
		p := float64(pRaw) / 255 * 100
		q := s.Percentile(p)
		return s.Min() <= q && q <= s.Max() &&
			float64(s.Min()) <= s.Mean() && s.Mean() <= float64(s.Max())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// fireProto is a tiny protocol for Recorder tests.
type fireProto struct{}

type fireState bool

func (s fireState) Clone() sim.State { return s }

func (fireProto) Name() string               { return "fire" }
func (fireProto) ActionNames() []string      { return []string{"fire"} }
func (fireProto) InitialState(int) sim.State { return fireState(false) }
func (fireProto) Enabled(c *sim.Configuration, p int) []int {
	if !bool(c.States[p].(fireState)) {
		return []int{0}
	}
	return nil
}
func (fireProto) Apply(*sim.Configuration, int, int) sim.State { return fireState(true) }

func TestRecorder(t *testing.T) {
	g, err := graph.Line(6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.NewConfiguration(g, fireProto{})
	rec := trace.NewRecorder(fireProto{}, 3)
	if _, err := sim.Run(cfg, fireProto{}, sim.Central{Order: sim.CentralLowestID}, sim.Options{
		Observers: []sim.Observer{rec},
	}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 3 || rec.Dropped != 3 {
		t.Fatalf("events=%d dropped=%d, want 3/3", len(rec.Events), rec.Dropped)
	}
	if rec.Moves["fire"] != 6 {
		t.Fatalf("moves = %v", rec.Moves)
	}
	var b strings.Builder
	rec.Dump(&b)
	if !strings.Contains(b.String(), "p0:fire") || !strings.Contains(b.String(), "further steps not recorded") {
		t.Fatalf("dump = %q", b.String())
	}
	mt := rec.MovesTable()
	if mt.Len() != 1 {
		t.Fatalf("moves table rows = %d", mt.Len())
	}
}
