// Package multi implements the concurrent-initiator setting of the paper's
// introduction: "any processor may need to initiate a global computation.
// Thus, any processor can be an initiator in a PIF protocol, and several
// PIF protocols may be running simultaneously. To cope with this concurrent
// execution of the PIF algorithms, every processor maintains the identity
// of the initiators."
//
// The composition is the product of k independent snap-stabilizing PIF
// instances, one per initiator, over the same network: every processor
// keeps one full PIF state per initiator (indexed by the initiator's
// identity — exactly the bookkeeping the paper describes), the instances
// share the daemon, and in each step a processor executes an action of at
// most one instance. Because the instances never read each other's
// variables, each one individually remains snap-stabilizing: every
// initiator's first wave after an arbitrary fault satisfies [PIF1]/[PIF2]
// regardless of how the daemon interleaves the instances (experiment E12).
package multi

import (
	"fmt"

	"snappif/internal/core"
	"snappif/internal/graph"
	"snappif/internal/sim"
)

// State is one processor's composite state: one PIF state per initiator.
type State struct {
	// Per is indexed like Protocol.Roots.
	Per []core.State
}

var _ sim.State = State{}

// Clone implements sim.State.
func (s State) Clone() sim.State {
	return State{Per: append([]core.State(nil), s.Per...)}
}

// Protocol composes one snap-PIF instance per initiator. It implements
// sim.Protocol. Not safe for concurrent use (the per-instance projection
// buffers are shared).
type Protocol struct {
	// Roots lists the initiators, one instance each.
	Roots []int

	g         *graph.Graph
	instances []*core.Protocol
	scratch   []*sim.Configuration
	names     []string
	perNames  int
}

var _ sim.Protocol = (*Protocol)(nil)

// New builds the composition of one instance per initiator in roots.
func New(g *graph.Graph, roots []int, opts ...core.Option) (*Protocol, error) {
	if len(roots) == 0 {
		return nil, fmt.Errorf("multi: need at least one initiator")
	}
	seen := make(map[int]bool, len(roots))
	mp := &Protocol{Roots: append([]int(nil), roots...), g: g}
	for _, r := range roots {
		if seen[r] {
			return nil, fmt.Errorf("multi: duplicate initiator %d", r)
		}
		seen[r] = true
		inst, err := core.New(g, r, opts...)
		if err != nil {
			return nil, err
		}
		mp.instances = append(mp.instances, inst)
		sc := &sim.Configuration{G: g, States: make([]sim.State, g.N())}
		for p := range sc.States {
			sc.States[p] = inst.InitialState(p)
		}
		mp.scratch = append(mp.scratch, sc)
	}
	coreNames := mp.instances[0].ActionNames()
	mp.perNames = len(coreNames)
	for _, r := range roots {
		for _, n := range coreNames {
			mp.names = append(mp.names, fmt.Sprintf("r%d/%s", r, n))
		}
	}
	return mp, nil
}

// Instances returns the per-initiator protocol instances (read-only use).
func (mp *Protocol) Instances() []*core.Protocol {
	return append([]*core.Protocol(nil), mp.instances...)
}

// Name implements sim.Protocol.
func (mp *Protocol) Name() string { return fmt.Sprintf("multi-snap-pif-%d", len(mp.Roots)) }

// ActionNames implements sim.Protocol. Action IDs encode (instance, core
// action) as instance*numCoreActions + coreAction.
func (mp *Protocol) ActionNames() []string { return append([]string(nil), mp.names...) }

// Decode splits a composite action ID into (instance index, core action).
func (mp *Protocol) Decode(a int) (inst, coreAction int) {
	return a / mp.perNames, a % mp.perNames
}

// InitialState implements sim.Protocol.
func (mp *Protocol) InitialState(p int) sim.State {
	per := make([]core.State, len(mp.instances))
	for i, inst := range mp.instances {
		per[i] = *inst.InitialState(p).(*core.State)
	}
	return State{Per: per}
}

// project fills instance i's scratch configuration with the closed
// neighborhood of p (the only states the core guards and statements read).
// The scratch holds *core.State boxes created once at New time; projection
// overwrites their contents.
func (mp *Protocol) project(c *sim.Configuration, i, p int) *sim.Configuration {
	sc := mp.scratch[i]
	*sc.States[p].(*core.State) = c.States[p].(State).Per[i] //snapvet:ok projection into this instance's private scratch boxes, not the shared configuration
	for _, q := range mp.g.Neighbors(p) {
		*sc.States[q].(*core.State) = c.States[q].(State).Per[i] //snapvet:ok projection into this instance's private scratch boxes, not the shared configuration
	}
	return sc
}

// Enabled implements sim.Protocol: the union of the instances' enabled
// actions; the daemon layer picks at most one per processor per step, so
// the instances interleave fairly.
func (mp *Protocol) Enabled(c *sim.Configuration, p int) []int {
	var out []int
	for i, inst := range mp.instances {
		for _, a := range inst.Enabled(mp.project(c, i, p), p) {
			out = append(out, i*mp.perNames+a)
		}
	}
	return out
}

// Apply implements sim.Protocol.
func (mp *Protocol) Apply(c *sim.Configuration, p int, a int) sim.State {
	i, ca := mp.Decode(a)
	next := *mp.instances[i].Apply(mp.project(c, i, p), p, ca).(*core.State)
	composite := c.States[p].(State).Clone().(State)
	composite.Per[i] = next
	return composite
}

// GuardsAreLocal implements sim.LocalProtocol: every instance's guards are
// local, hence so is their union.
func (mp *Protocol) GuardsAreLocal() bool { return true }

// Project returns a standalone configuration holding instance i's states —
// for checkers and fault injectors that speak the core protocol's language.
func Project(c *sim.Configuration, i int) *sim.Configuration {
	out := &sim.Configuration{G: c.G, States: make([]sim.State, c.N())}
	for p := range out.States {
		s := c.States[p].(State).Per[i]
		out.States[p] = &s
	}
	return out
}

// Inject replaces instance i's states in the composite configuration with
// those of the given core-shaped configuration (e.g. after running a fault
// injector on a projection).
func Inject(c *sim.Configuration, i int, inst *sim.Configuration) {
	for p := range c.States {
		composite := c.States[p].(State).Clone().(State)
		composite.Per[i] = *inst.States[p].(*core.State)
		c.States[p] = composite
	}
}
