package multi_test

import (
	"math/rand"
	"testing"

	"snappif/internal/fault"
	"snappif/internal/graph"
	"snappif/internal/multi"
	"snappif/internal/sim"
)

func randGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.RandomConnected(n, 0.3, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConcurrentInitiatorsCleanStart(t *testing.T) {
	g := randGraph(t, 10, 3)
	mp, err := multi.New(g, []int{0, 4, 9})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.NewConfiguration(g, mp)
	obs := multi.NewObserver(mp)
	if _, err := sim.Run(cfg, mp, sim.DistributedRandom{P: 0.5}, sim.Options{
		Seed:      7,
		Observers: []sim.Observer{obs},
		StopWhen:  obs.StopAfterCyclesEach(2),
	}); err != nil {
		t.Fatal(err)
	}
	if v := obs.FirstViolation(g.N()); v != "" {
		t.Fatalf("concurrent waves violated the spec: %s", v)
	}
	for i, n := range obs.CompletedPerInstance() {
		if n < 2 {
			t.Fatalf("initiator %d completed only %d waves", mp.Roots[i], n)
		}
	}
}

func TestConcurrentInitiatorsFromCorruption(t *testing.T) {
	// Each instance corrupted independently with a different pattern; every
	// initiator's first wave must still satisfy the spec.
	g := randGraph(t, 9, 5)
	mp, err := multi.New(g, []int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.NewConfiguration(g, mp)
	insts := mp.Instances()
	for i, inj := range []fault.Injector{fault.UniformRandom(), fault.PhantomTree()} {
		proj := multi.Project(cfg, i)
		inj.Apply(proj, insts[i], rand.New(rand.NewSource(int64(i)+11)))
		multi.Inject(cfg, i, proj)
	}
	obs := multi.NewObserver(mp)
	if _, err := sim.Run(cfg, mp, sim.DistributedRandom{P: 0.5}, sim.Options{
		Seed:      13,
		Observers: []sim.Observer{obs},
		StopWhen:  obs.StopAfterCyclesEach(1),
	}); err != nil {
		t.Fatal(err)
	}
	if v := obs.FirstViolation(g.N()); v != "" {
		t.Fatalf("post-fault concurrent waves violated: %s", v)
	}
}

func TestInstancesAreIndependent(t *testing.T) {
	// Corrupting one instance must not affect the other's wave at all.
	g := randGraph(t, 8, 9)
	mp, err := multi.New(g, []int{0, 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.NewConfiguration(g, mp)
	insts := mp.Instances()
	proj := multi.Project(cfg, 1)
	fault.InflatedCounts().Apply(proj, insts[1], rand.New(rand.NewSource(3)))
	multi.Inject(cfg, 1, proj)

	obs := multi.NewObserver(mp)
	if _, err := sim.Run(cfg, mp, sim.Central{Order: sim.CentralRandom}, sim.Options{
		Seed:      5,
		Observers: []sim.Observer{obs},
		StopWhen:  obs.StopAfterCyclesEach(1),
	}); err != nil {
		t.Fatal(err)
	}
	if v := obs.FirstViolation(g.N()); v != "" {
		t.Fatalf("violation: %s", v)
	}
}

func TestAllProcessorsAsInitiators(t *testing.T) {
	// The fully general setting: every processor initiates.
	g, err := graph.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	roots := []int{0, 1, 2, 3, 4, 5}
	mp, err := multi.New(g, roots)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.NewConfiguration(g, mp)
	obs := multi.NewObserver(mp)
	if _, err := sim.Run(cfg, mp, sim.DistributedRandom{P: 0.4}, sim.Options{
		Seed:      3,
		MaxSteps:  5_000_000,
		Observers: []sim.Observer{obs},
		StopWhen:  obs.StopAfterCyclesEach(1),
	}); err != nil {
		t.Fatal(err)
	}
	if v := obs.FirstViolation(g.N()); v != "" {
		t.Fatalf("violation with all-processor initiators: %s", v)
	}
}

func TestValidation(t *testing.T) {
	g := randGraph(t, 6, 1)
	if _, err := multi.New(g, nil); err == nil {
		t.Fatal("empty initiator set accepted")
	}
	if _, err := multi.New(g, []int{0, 0}); err == nil {
		t.Fatal("duplicate initiators accepted")
	}
	if _, err := multi.New(g, []int{99}); err == nil {
		t.Fatal("out-of-range initiator accepted")
	}
}

func TestActionNamesAndDecode(t *testing.T) {
	g := randGraph(t, 5, 2)
	mp, err := multi.New(g, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	names := mp.ActionNames()
	if len(names) != 14 { // 2 instances × 7 core actions
		t.Fatalf("got %d action names", len(names))
	}
	if names[0] != "r1/B-action" || names[7] != "r3/B-action" {
		t.Fatalf("unexpected names: %v", names[:8])
	}
	inst, ca := mp.Decode(9)
	if inst != 1 || ca != 2 {
		t.Fatalf("Decode(9) = (%d,%d)", inst, ca)
	}
}
