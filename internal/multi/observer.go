package multi

import (
	"fmt"

	"snappif/internal/core"
	"snappif/internal/sim"
)

// CycleRecord describes one completed wave of one initiator.
type CycleRecord struct {
	// Instance indexes Protocol.Roots.
	Instance int
	// Root is the initiator.
	Root int
	// Msg is the broadcast payload.
	Msg uint64
	// Delivered and Acked count non-root processors.
	Delivered, Acked int
}

// OK reports whether the wave satisfied [PIF1]/[PIF2] on n processors.
func (r CycleRecord) OK(n int) bool { return r.Delivered == n-1 && r.Acked == n-1 }

// Observer tracks, per instance, wave delivery across a run of the
// composed protocol.
type Observer struct {
	mp *Protocol

	// Cycles lists completed waves of every initiator in completion order.
	Cycles []CycleRecord

	msg    []uint64
	open   []bool
	joined []map[int]bool
	fed    []map[int]bool
}

var _ sim.Observer = (*Observer)(nil)

// NewObserver builds an observer for the composed protocol.
func NewObserver(mp *Protocol) *Observer {
	k := len(mp.Roots)
	return &Observer{
		mp:     mp,
		msg:    make([]uint64, k),
		open:   make([]bool, k),
		joined: make([]map[int]bool, k),
		fed:    make([]map[int]bool, k),
	}
}

// OnStep implements sim.Observer.
func (o *Observer) OnStep(_ int, executed []sim.Choice, c *sim.Configuration) {
	for _, ch := range executed {
		i, ca := o.mp.Decode(ch.Action)
		root := o.mp.Roots[i]
		s := c.States[ch.Proc].(State).Per[i]
		switch {
		case ch.Proc == root && ca == core.ActionB:
			o.open[i] = true
			o.msg[i] = s.Msg
			o.joined[i] = make(map[int]bool, c.N())
			o.fed[i] = make(map[int]bool, c.N())
		case !o.open[i]:
		case ch.Proc != root && ca == core.ActionB && s.Msg == o.msg[i]:
			o.joined[i][ch.Proc] = true
		case ch.Proc != root && ca == core.ActionF && s.Msg == o.msg[i] && o.joined[i][ch.Proc]:
			o.fed[i][ch.Proc] = true
		case ch.Proc == root && ca == core.ActionF:
			o.Cycles = append(o.Cycles, CycleRecord{
				Instance:  i,
				Root:      root,
				Msg:       o.msg[i],
				Delivered: len(o.joined[i]),
				Acked:     len(o.fed[i]),
			})
			o.open[i] = false
		}
	}
}

// CompletedPerInstance returns the number of completed waves per instance.
func (o *Observer) CompletedPerInstance() []int {
	out := make([]int, len(o.mp.Roots))
	for _, rec := range o.Cycles {
		out[rec.Instance]++
	}
	return out
}

// StopAfterCyclesEach returns a stop predicate that fires once every
// initiator completed at least k waves.
func (o *Observer) StopAfterCyclesEach(k int) func(*sim.RunState) bool {
	return func(*sim.RunState) bool {
		for _, n := range o.CompletedPerInstance() {
			if n < k {
				return false
			}
		}
		return true
	}
}

// FirstViolation describes the first spec-violating wave, or "".
func (o *Observer) FirstViolation(n int) string {
	for _, rec := range o.Cycles {
		if !rec.OK(n) {
			return fmt.Sprintf("initiator %d wave m=%d: delivered %d/%d acked %d/%d",
				rec.Root, rec.Msg, rec.Delivered, n-1, rec.Acked, n-1)
		}
	}
	return ""
}
