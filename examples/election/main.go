// Leader election: the paper's concluding "universal transformer" idea in
// action. Election is an arbitrary global query (argmax over priorities)
// evaluated over one snap-stabilizing PIF wave — so the FIRST election
// after an arbitrary transient fault already returns the true leader,
// with no stabilization delay.
//
//	go run ./examples/election
package main

import (
	"fmt"
	"log"

	"snappif"
)

func main() {
	topo, err := snappif.Barbell(5, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %s (two 5-cliques joined by a bridge)\n\n", topo)

	el, err := snappif.NewElection(topo, 0, snappif.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}

	// Default priorities are processor IDs: the highest ID leads.
	leader, err := el.Elect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial election: leader = p%d (highest ID)\n", leader)

	// A priority change (say, p3 has the most free capacity) takes effect
	// on the next wave.
	el.SetPriority(3, 1_000)
	if leader, err = el.Elect(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after boosting p3: leader = p%d\n", leader)

	// Catastrophic transient fault — then elect immediately. The snap
	// guarantee makes the very first post-fault election exact.
	if err := el.Corrupt(snappif.CorruptPhantomTree, 7); err != nil {
		log.Fatal(err)
	}
	if leader, err = el.Elect(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first election after a phantom-tree fault: leader = p%d (still exact)\n", leader)

	// Arbitrary global queries ride the same wave machinery.
	qs, err := snappif.NewQueryService(topo, 0, snappif.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	for p := 0; p < topo.N(); p++ {
		qs.SetInput(p, int64(10+p*p))
	}
	variance, err := qs.Evaluate(func(values []int64) int64 {
		var sum, sumSq int64
		for _, v := range values {
			sum += v
			sumSq += v * v
		}
		n := int64(len(values))
		mean := sum / n
		return sumSq/n - mean*mean
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narbitrary query over one wave: population variance of loads ≈ %d\n", variance)
}
