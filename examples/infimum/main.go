// Distributed infimum: the classic PIF workload from the paper's
// introduction. A sensor network must agree on the minimum reading in the
// network; one PIF wave computes it — the broadcast phase queries, the
// feedback phase folds each subtree's minimum upward, and the root holds
// the network-wide minimum when its feedback completes.
//
//	go run ./examples/infimum
package main

import (
	"fmt"
	"log"
	"math/rand"

	"snappif"
)

func main() {
	// A 30-node sensor field: a random connected mesh.
	topo, err := snappif.Random(30, 0.15, 99)
	if err != nil {
		log.Fatal(err)
	}
	net, err := snappif.NewNetwork(topo, 0,
		snappif.WithCombine(snappif.MinCombine),
		snappif.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Simulated temperature readings in tenths of a degree.
	rng := rand.New(rand.NewSource(2026))
	readings := make([]int64, topo.N())
	trueMin := int64(1 << 40)
	for p := range readings {
		readings[p] = 150 + rng.Int63n(200) // 15.0°C .. 35.0°C
		if readings[p] < trueMin {
			trueMin = readings[p]
		}
	}
	if err := net.SetValues(readings); err != nil {
		log.Fatal(err)
	}

	res, err := net.Broadcast()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one PIF wave over %s (%d rounds):\n", topo, res.Rounds)
	fmt.Printf("  network minimum  = %.1f°C\n", float64(res.Aggregate)/10)
	fmt.Printf("  ground truth     = %.1f°C\n", float64(trueMin)/10)
	if res.Aggregate != trueMin {
		log.Fatal("aggregation mismatch — this should be impossible")
	}

	// The snap guarantee at work: corrupt the protocol state arbitrarily
	// and ask again — the first wave after the fault still returns the
	// exact minimum.
	if err := net.Corrupt(snappif.CorruptUniform); err != nil {
		log.Fatal(err)
	}
	res, err = net.Broadcast()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after arbitrary state corruption, first wave: minimum = %.1f°C (still exact: %v)\n",
		float64(res.Aggregate)/10, res.Aggregate == trueMin)

	// Maxima and sums come from the same wave machinery.
	sumNet, err := snappif.NewNetwork(topo, 0, snappif.WithCombine(snappif.SumCombine))
	if err != nil {
		log.Fatal(err)
	}
	if err := sumNet.SetValues(readings); err != nil {
		log.Fatal(err)
	}
	sres, err := sumNet.Broadcast()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean reading via a Sum wave: %.1f°C\n", float64(sres.Aggregate)/float64(topo.N())/10)
}
