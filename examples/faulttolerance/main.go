// Fault tolerance: what "snap-stabilizing" buys over "self-stabilizing".
//
// The program corrupts the protocol state of a network with every fault
// pattern in the suite — phantom trees, inflated counters, premature
// feedback authorization, a stale broadcast region — and shows that the
// very FIRST wave after each corruption is already correct: every processor
// receives the root's message and every acknowledgment reaches the root.
// A merely self-stabilizing PIF only promises this eventually.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"snappif"
)

func main() {
	topo, err := snappif.Grid(4, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %s — corrupting, then broadcasting immediately\n\n", topo)

	corruptions := []struct {
		kind snappif.Corruption
		name string
	}{
		{snappif.CorruptUniform, "every variable scrambled uniformly"},
		{snappif.CorruptPartial, "half the processors scrambled"},
		{snappif.CorruptPhantomTree, "broadcast tree rooted at an impostor"},
		{snappif.CorruptPrematureFok, "feedback authorization raised early"},
		{snappif.CorruptInflatedCounts, "subtree counters forced to the maximum"},
		{snappif.CorruptStaleFeedback, "random phase inversions in a planted tree"},
		{snappif.CorruptMaxLevels, "everyone broadcasting at level Lmax"},
		{snappif.CorruptStaleRegion, "self-contained stale region (defeats non-snap PIF)"},
	}

	for _, c := range corruptions {
		net, err := snappif.NewNetwork(topo, 0,
			snappif.WithSeed(int64(c.kind)*101),
			snappif.WithInvariantChecking(),
		)
		if err != nil {
			log.Fatal(err)
		}
		if err := net.Corrupt(c.kind); err != nil {
			log.Fatal(err)
		}
		res, err := net.Broadcast()
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		status := "FIRST WAVE CORRECT"
		if !res.OK() || res.Delivered != topo.N()-1 {
			status = fmt.Sprintf("VIOLATED (%v)", res.Violations)
		}
		fmt.Printf("%-55s → delivered %2d/%2d in %3d rounds — %s\n",
			c.name, res.Delivered, topo.N()-1, res.Rounds, status)
	}

	fmt.Println("\nevery first-after-fault wave satisfied [PIF1] and [PIF2]:")
	fmt.Println("that is Definition 1 (snap-stabilization) observed in action.")
}
