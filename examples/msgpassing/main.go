// Message passing: the PIF protocol in an asynchronous message-passing
// network. The paper's shared registers become cached neighbor states
// refreshed over FIFO links with random delays (the classic link-register
// construction). Composite atomicity — and with it the snap guarantee — is
// lost in this weaker model, but the protocol's correction actions still
// make it converge: the demo measures exactly how the first-after-fault
// wave can degrade and how quickly later waves recover.
//
//	go run ./examples/msgpassing
package main

import (
	"fmt"
	"log"

	"snappif"
)

func main() {
	topo, err := snappif.Grid(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("asynchronous message-passing network on %s\n\n", topo)

	// Clean start: waves deliver exactly as in the shared-memory model.
	res, err := snappif.RunMessagePassing(topo, 0, 3, snappif.MessagePassingOptions{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean start: %d messages, %v simulated time\n", res.Messages, res.Elapsed)
	for i, w := range res.Waves {
		fmt.Printf("  wave %d: delivered %2d/%2d acked %2d/%2d\n",
			i+1, w.Delivered, topo.N()-1, w.Acknowledged, topo.N()-1)
	}

	// Corrupted start: the link-register model is weaker than the paper's
	// (stale caches break composite atomicity), so the first wave may
	// degrade — but convergence survives.
	fmt.Println("\nafter uniform corruption (composite atomicity lost → snap not guaranteed):")
	res, err = snappif.RunMessagePassing(topo, 0, 4, snappif.MessagePassingOptions{
		Corrupt: snappif.CorruptUniform,
		Seed:    9,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, w := range res.Waves {
		ok := w.Delivered == topo.N()-1 && w.Acknowledged == topo.N()-1
		fmt.Printf("  wave %d: delivered %2d/%2d acked %2d/%2d ok=%v\n",
			i+1, w.Delivered, topo.N()-1, w.Acknowledged, topo.N()-1, ok)
	}
	last := res.Waves[len(res.Waves)-1]
	if last.Delivered != topo.N()-1 {
		log.Fatal("failed to converge")
	}
	fmt.Println("\nconverged — in the paper's shared-memory model even the FIRST wave")
	fmt.Println("would have been correct (compare examples/faulttolerance).")
}
