// Quickstart: build an arbitrary network, run snap-stabilizing PIF waves on
// it, and print the measurements Theorem 4 bounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"snappif"
)

func main() {
	// An arbitrary connected network: 24 processors, a random spanning
	// tree plus ~20% extra links.
	topo, err := snappif.Random(24, 0.2, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %s (diameter %d)\n", topo, topo.Diameter())

	// Processor 0 is the PIF root. The daemon models asynchrony: each
	// enabled processor moves with probability 0.5 per step.
	net, err := snappif.NewNetwork(topo, 0,
		snappif.WithDaemon(snappif.DistributedDaemon(0.5)),
		snappif.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Each Broadcast is one PIF cycle: the root's message reaches every
	// processor ([PIF1]) and every acknowledgment returns to the root
	// ([PIF2]) — the wave builds its own spanning tree on the fly.
	for i := 0; i < 3; i++ {
		res, err := net.Broadcast()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wave %d: delivered %d/%d, acknowledged %d/%d, %d rounds (tree height %d, Theorem 4 bound %d)\n",
			i+1, res.Delivered, topo.N()-1, res.Acknowledged, topo.N()-1,
			res.Rounds, res.Height, 5*res.Height+5)
	}

	// Peek at the final configuration: after a completed cycle every
	// processor is back in the clean phase, ready for the next wave.
	clean := 0
	for _, s := range net.States() {
		if s.Phase == "C" {
			clean++
		}
	}
	fmt.Printf("after the last wave: %d/%d processors clean\n", clean, topo.N())
}
