// Concurrent initiators: "any processor can be an initiator in a PIF
// protocol, and several PIF protocols may be running simultaneously"
// (the paper's introduction). Three processors run their own
// snap-stabilizing waves at once over the same network — every processor
// keeps one protocol state per initiator identity — and each initiator's
// waves satisfy the specification independently, even when one instance's
// state is corrupted.
//
//	go run ./examples/multiinitiator
package main

import (
	"fmt"
	"log"

	"snappif"
)

func main() {
	topo, err := snappif.Torus(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	initiators := []int{0, 5, 15}
	net, err := snappif.NewMultiNetwork(topo, initiators, snappif.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network %s, concurrent initiators %v\n\n", topo, net.Initiators())

	// Corrupt each instance with a different fault before anything runs.
	for i, kind := range []snappif.Corruption{
		snappif.CorruptUniform, snappif.CorruptPhantomTree, snappif.CorruptInflatedCounts,
	} {
		if err := net.CorruptInstance(i, kind); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("all three instances corrupted independently — now everyone broadcasts at once:")

	waves, err := net.RunWavesEach(2)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range waves {
		fmt.Printf("  initiator p%-2d wave m=%-3d delivered %2d/%2d acked %2d/%2d ok=%v\n",
			w.Initiator, w.Message, w.Delivered, topo.N()-1,
			w.Acknowledged, topo.N()-1, w.OK(topo.N()))
		if !w.OK(topo.N()) {
			log.Fatal("a concurrent wave violated the specification")
		}
	}
	fmt.Println("\nevery initiator's first-after-fault wave was already correct —")
	fmt.Println("the instances snap-stabilize independently under one shared scheduler.")
}
