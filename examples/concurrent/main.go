// Concurrent execution: the protocol running with real parallelism — one
// goroutine per processor sharing state under fine-grained neighborhood
// locks, the Go scheduler playing the role of the asynchronous daemon. The
// paper's correctness argument covers any weakly fair distributed daemon,
// so delivery must stay perfect here too, including from a corrupted
// initial configuration.
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"snappif"
)

func main() {
	topo, err := snappif.Random(48, 0.1, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %s, goroutines: %d processors on %d CPUs\n\n",
		topo, topo.N(), runtime.NumCPU())

	// Clean start.
	res, err := snappif.RunConcurrent(topo, 0, 5, snappif.ConcurrentOptions{
		Timeout: time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("clean start", topo, res)

	// From a corrupted configuration: the first wave must already deliver.
	res, err = snappif.RunConcurrent(topo, 0, 5, snappif.ConcurrentOptions{
		Corrupt: snappif.CorruptPhantomTree,
		Seed:    13,
		Timeout: time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("after phantom-tree corruption", topo, res)
}

func report(label string, topo snappif.Topology, res snappif.ConcurrentResult) {
	fmt.Printf("%s: %d waves, %d moves, %v wall clock\n",
		label, len(res.Waves), res.Moves, res.Elapsed.Round(time.Millisecond))
	for i, w := range res.Waves {
		ok := w.Delivered == topo.N()-1 && w.Acknowledged == topo.N()-1
		fmt.Printf("  wave %d: delivered %2d/%2d acked %2d/%2d ok=%v\n",
			i+1, w.Delivered, topo.N()-1, w.Acknowledged, topo.N()-1, ok)
		if !ok {
			log.Fatal("delivery violated under concurrency")
		}
	}
	fmt.Println()
}
