// Distributed reset: the "repair the system" workload from the paper's
// Related Work section, where reset protocols are PIF-based. A coordinator
// installs a fresh epoch at every processor with one PIF wave; application
// state from older epochs is discarded on receipt. Because the wave is
// snap-stabilizing, the first reset after an arbitrary fault is already
// trustworthy — exactly what one wants from a repair mechanism.
//
// The example drives the epochs through the public payload register: each
// wave's message identifier is the new epoch.
//
//	go run ./examples/reset
package main

import (
	"fmt"
	"log"

	"snappif"
)

func main() {
	topo, err := snappif.Torus(4, 5)
	if err != nil {
		log.Fatal(err)
	}
	net, err := snappif.NewNetwork(topo, 0, snappif.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %s, coordinator: processor %d\n\n", topo, net.Root())

	// epochOf reads the installed epoch at each processor: it is the last
	// payload the processor received.
	epochs := func() (uint64, bool) {
		states := net.States()
		e := states[0].Payload
		for _, s := range states[1:] {
			if s.Payload != e {
				return 0, false
			}
		}
		return e, true
	}

	reset := func(label string) {
		res, err := net.Broadcast()
		if err != nil {
			log.Fatal(err)
		}
		epoch, uniform := epochs()
		fmt.Printf("%-38s → epoch %d installed at %d/%d processors (uniform: %v, %d rounds)\n",
			label, res.Message, res.Delivered+1, topo.N(), uniform && epoch == res.Message, res.Rounds)
		if !uniform || epoch != res.Message {
			log.Fatal("reset incomplete — impossible under snap-stabilization")
		}
	}

	reset("initial reset")
	reset("routine reset")

	// Simulate a catastrophic transient fault: every protocol variable
	// scrambled, including the installed epochs.
	if err := net.Corrupt(snappif.CorruptUniform); err != nil {
		log.Fatal(err)
	}
	if _, uniform := epochs(); uniform {
		log.Fatal("corruption failed to scramble the epochs")
	}
	fmt.Println("\n-- transient fault: protocol state and epochs scrambled --")
	reset("first reset after the fault")
	reset("second reset after the fault")
}
