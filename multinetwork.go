package snappif

import (
	"errors"
	"fmt"
	"math/rand"

	"snappif/internal/multi"
	"snappif/internal/sim"
)

// MultiNetwork runs several PIF protocols simultaneously — one independent
// snap-stabilizing instance per initiator, over the same network, with
// every processor maintaining one protocol state per initiator identity
// (the concurrent-execution setting of the paper's introduction). Each
// instance snap-stabilizes independently of how the scheduler interleaves
// them.
type MultiNetwork struct {
	topo   Topology
	mp     *multi.Protocol
	cfg    *sim.Configuration
	daemon sim.Daemon
	rng    *rand.Rand

	maxSteps int
}

// NewMultiNetwork builds one protocol instance per initiator in roots.
func NewMultiNetwork(topo Topology, roots []int, opts ...NetworkOption) (*MultiNetwork, error) {
	if topo.g == nil {
		return nil, errors.New("snappif: zero-value Topology; use a topology constructor")
	}
	o := networkOptions{
		daemon:   sim.DistributedRandom{P: 0.5},
		seed:     1,
		maxSteps: 4_000_000,
	}
	for _, opt := range opts {
		opt(&o)
	}
	mp, err := multi.New(topo.g, roots)
	if err != nil {
		return nil, err
	}
	return &MultiNetwork{
		topo:     topo,
		mp:       mp,
		cfg:      sim.NewConfiguration(topo.g, mp),
		daemon:   o.daemon,
		rng:      rand.New(rand.NewSource(o.seed)),
		maxSteps: o.maxSteps,
	}, nil
}

// Initiators returns the initiator list.
func (m *MultiNetwork) Initiators() []int { return append([]int(nil), m.mp.Roots...) }

// CorruptInstance applies a corruption pattern to one initiator's protocol
// instance, leaving the others untouched.
func (m *MultiNetwork) CorruptInstance(instance int, kind Corruption) error {
	if instance < 0 || instance >= len(m.mp.Roots) {
		return fmt.Errorf("snappif: instance %d out of range [0,%d)", instance, len(m.mp.Roots))
	}
	inj, err := injectorFor(kind)
	if err != nil {
		return err
	}
	proj := multi.Project(m.cfg, instance)
	inj.Apply(proj, m.mp.Instances()[instance], m.rng)
	multi.Inject(m.cfg, instance, proj)
	return nil
}

// InitiatorWave reports one completed wave of one initiator.
type InitiatorWave struct {
	// Initiator is the wave's root processor.
	Initiator int
	// Message is the broadcast payload identifier.
	Message uint64
	// Delivered and Acknowledged count non-root processors.
	Delivered    int
	Acknowledged int
}

// OK reports whether the wave satisfied [PIF1]/[PIF2].
func (w InitiatorWave) OK(n int) bool { return w.Delivered == n-1 && w.Acknowledged == n-1 }

// RunWavesEach runs the composed system until every initiator has completed
// at least k waves, returning all completed waves in completion order.
func (m *MultiNetwork) RunWavesEach(k int) ([]InitiatorWave, error) {
	obs := multi.NewObserver(m.mp)
	_, err := sim.Run(m.cfg, m.mp, m.daemon, sim.Options{
		MaxSteps:  m.maxSteps,
		Seed:      m.rng.Int63(),
		Observers: []sim.Observer{obs},
		StopWhen:  obs.StopAfterCyclesEach(k),
	})
	if err != nil {
		return nil, err
	}
	for _, n := range obs.CompletedPerInstance() {
		if n < k {
			return nil, fmt.Errorf("%w: not every initiator completed %d waves", ErrWaveIncomplete, k)
		}
	}
	out := make([]InitiatorWave, 0, len(obs.Cycles))
	for _, rec := range obs.Cycles {
		out = append(out, InitiatorWave{
			Initiator:    rec.Root,
			Message:      rec.Msg,
			Delivered:    rec.Delivered,
			Acknowledged: rec.Acked,
		})
	}
	return out, nil
}
