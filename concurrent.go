package snappif

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"snappif/internal/core"
	"snappif/internal/fault"
	"snappif/internal/obs"
	rt "snappif/internal/runtime"
	"snappif/internal/sim"
)

// ConcurrentResult reports a concurrent (goroutine-per-processor) run.
type ConcurrentResult struct {
	// Waves lists per-wave delivery counts.
	Waves []ConcurrentWave
	// Moves counts all action executions across the run.
	Moves int64
	// MovesPerProc counts action executions per processor — the Go
	// scheduler's fairness profile.
	MovesPerProc []int64
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
}

// ConcurrentWave is one PIF cycle observed during a concurrent run.
type ConcurrentWave struct {
	// Message is the payload the root broadcast.
	Message uint64
	// Delivered and Acknowledged count non-root processors ([PIF1]/[PIF2]
	// require N-1 each).
	Delivered    int
	Acknowledged int
}

// ConcurrentOptions configures RunConcurrent.
type ConcurrentOptions struct {
	// Corrupt, if non-zero, corrupts the initial configuration.
	Corrupt Corruption
	// Seed seeds the corruption (default 1).
	Seed int64
	// Timeout bounds the wall-clock duration (default 30s).
	Timeout time.Duration
	// EventTrace, if non-nil, receives the structured JSONL event trace of
	// the run: the header, the causally ordered per-action events (kind
	// "action", globally sequenced under the actors' neighborhood locks),
	// and the totals summary. Unlike simulator traces, action order here is
	// scheduler-dependent — piftrace diff ignores action events for that
	// reason.
	EventTrace io.Writer
}

// RunConcurrent executes the protocol with real concurrency — one
// goroutine per processor sharing state under neighborhood locking, the Go
// scheduler acting as the (locally central, weakly fair) daemon — until the
// root completes the requested number of waves.
func RunConcurrent(topo Topology, root, waves int, opts ConcurrentOptions) (ConcurrentResult, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	var corrupt func(*sim.Configuration, *core.Protocol)
	if opts.Corrupt != 0 {
		inj, err := injectorFor(opts.Corrupt)
		if err != nil {
			return ConcurrentResult{}, err
		}
		rng := rand.New(rand.NewSource(opts.Seed))
		corrupt = func(c *sim.Configuration, pr *core.Protocol) { inj.Apply(c, pr, rng) }
	}
	rtOpts := rt.Options{Corrupt: corrupt, Timeout: opts.Timeout}
	tracer := obs.Disabled()
	if opts.EventTrace != nil {
		proto, err := core.New(topo.g, root)
		if err != nil {
			return ConcurrentResult{}, err
		}
		tracer = obs.New(opts.EventTrace, obs.WithProtocol(proto))
		tracer.BeginRun(topo.g, "go-scheduler", opts.Seed, nil)
		rtOpts.OnAction = tracer.Action
	}
	res, err := rt.Run(topo.g, root, waves, rtOpts)
	if cerr := tracer.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return ConcurrentResult{}, err
	}
	out := ConcurrentResult{Moves: res.Moves, MovesPerProc: res.MovesPerProc, Elapsed: res.Elapsed}
	for _, cs := range res.Cycles {
		out.Waves = append(out.Waves, ConcurrentWave{
			Message:      cs.Msg,
			Delivered:    cs.Delivered,
			Acknowledged: cs.Acked,
		})
	}
	return out, nil
}

// injectorFor maps a public Corruption to its fault injector.
func injectorFor(kind Corruption) (fault.Injector, error) {
	switch kind {
	case CorruptUniform:
		return fault.UniformRandom(), nil
	case CorruptPartial:
		return fault.PartialRandom(0.5), nil
	case CorruptPhantomTree:
		return fault.PhantomTree(), nil
	case CorruptPrematureFok:
		return fault.PrematureFok(), nil
	case CorruptInflatedCounts:
		return fault.InflatedCounts(), nil
	case CorruptStaleFeedback:
		return fault.StaleFeedback(), nil
	case CorruptMaxLevels:
		return fault.MaxLevels(), nil
	case CorruptStaleRegion:
		return fault.StaleRegion(), nil
	default:
		return fault.Injector{}, fmt.Errorf("snappif: unknown corruption %d", kind)
	}
}
