package snappif_test

import (
	"testing"

	"snappif"
)

func TestQueryServiceFacade(t *testing.T) {
	topo, err := snappif.Wheel(10)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := snappif.NewQueryService(topo, 0, snappif.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for p := 0; p < topo.N(); p++ {
		v := int64(p * 3)
		qs.SetInput(p, v)
		want += v
	}
	sum := func(values []int64) int64 {
		var acc int64
		for _, v := range values {
			acc += v
		}
		return acc
	}
	got, err := qs.Evaluate(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	// Exact again right after corruption.
	if err := qs.Corrupt(snappif.CorruptUniform, 5); err != nil {
		t.Fatal(err)
	}
	if got, err = qs.Evaluate(sum); err != nil {
		t.Fatal(err)
	} else if got != want {
		t.Fatalf("post-fault sum = %d, want %d", got, want)
	}
	if err := qs.Corrupt(snappif.Corruption(77), 1); err == nil {
		t.Fatal("unknown corruption accepted")
	}
}

func TestElectionFacade(t *testing.T) {
	topo, err := snappif.Circulant(11, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	el, err := snappif.NewElection(topo, 4, snappif.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	leader, err := el.Elect()
	if err != nil {
		t.Fatal(err)
	}
	if leader != topo.N()-1 {
		t.Fatalf("leader = %d, want %d", leader, topo.N()-1)
	}
	el.SetPriority(6, 999)
	if err := el.Corrupt(snappif.CorruptStaleRegion, 3); err != nil {
		t.Fatal(err)
	}
	if leader, err = el.Elect(); err != nil {
		t.Fatal(err)
	} else if leader != 6 {
		t.Fatalf("post-fault leader = %d, want 6", leader)
	}
}
