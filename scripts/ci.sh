#!/bin/sh
# ci.sh — the full local verification pipeline. Stdlib toolchain only.
#
#   sh scripts/ci.sh            # format check, vet, build, tests, race, allocs
#   CI_FUZZ=1 sh scripts/ci.sh  # additionally smoke-fuzz the engine oracles
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmt=$(gofmt -s -l .)
if [ -n "$fmt" ]; then
    echo "gofmt -s needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== snapvet (model conformance, determinism, hot-path allocation) =="
go run ./cmd/snapvet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== race: simulation engine, experiment executor, concurrent runtime, tracer =="
go test -race ./internal/sim/ ./internal/exp/ ./internal/runtime/ ./cmd/pifexp/ ./internal/obs/

echo "== race: flat engine (differential grid + sharded sweep) =="
go test -race ./internal/flat/

echo "== race: counterexample hunter =="
go test -race ./internal/hunt/

echo "== race: soak (reduced horizon) =="
go test -race -short -run TestSoakManyWaves -count=1 .

echo "== allocation budget (zero allocs/step after warm-up, disabled tracer included) =="
go test ./internal/sim/ -run 'TestZeroAllocs|TestCycleByteBudget|TestChoicesBufferReuse|TestCopyFromZeroAllocs' -count=1 -v
go test ./internal/obs/ -run TestDisabledTracerZeroAllocs -count=1 -v
go test ./internal/flat/ -run 'TestFlatZeroAllocsPerStep|TestFlatShardedZeroAllocsPerStep|TestFlatCopyFromZeroAllocs' -count=1 -v

echo "== determinism (serial vs parallel, optimized vs reference) =="
go test ./internal/sim/ -run TestRunnerMatchesReference -count=1
go test ./internal/exp/ -run TestSerialParallelIdentical -count=1
go test ./cmd/pifexp/ -run TestParallelStdoutByteIdentical -count=1

echo "== determinism (flat engine bit-identical to generic) =="
go test ./internal/flat/ -run TestFlatMatchesGeneric -count=1
go test ./internal/exp/ -run TestFlatEngineTablesByteIdentical -count=1
go test ./cmd/pifexp/ -run TestRunFlatEngineIdenticalStdout -count=1

echo "== hunt smoke (clean protocol must hunt clean on a 2x4 grid) =="
go run ./cmd/pifhunt hunt -topo grid:2x4 -trials 4 -steps 4000

if [ "${CI_FUZZ:-0}" = "1" ]; then
    echo "== fuzz smoke (engine oracles, injector recovery) =="
    go test ./internal/sim/ -run xxx -fuzz FuzzForceAged -fuzztime 10s
    go test ./internal/sim/ -run xxx -fuzz FuzzBitsetRoundAccounting -fuzztime 10s
    go test ./internal/fault/ -run xxx -fuzz FuzzInjectorRecovery -fuzztime 10s
    go test ./internal/flat/ -run xxx -fuzz FuzzFlatVsGeneric -fuzztime 10s
fi

echo "CI OK"
