#!/bin/sh
# ci.sh — the full local verification pipeline. Stdlib toolchain only.
#
#   sh scripts/ci.sh               # format check, vet, build, tests, race, allocs
#   CI_FUZZ=1 sh scripts/ci.sh     # additionally smoke-fuzz the engine oracles
#   CI_EXPLORE=1 sh scripts/ci.sh  # additionally smoke the exhaustive explorer
#   CI_SERVICE=1 sh scripts/ci.sh  # additionally gate the pifserve bench grid
#                                  # (pinned small cell + byte-determinism)
#   CI_OVERHEAD=1 sh scripts/ci.sh # additionally gate telemetry overhead (timing-
#                                  # sensitive; needs a quiet box)
set -eu
cd "$(dirname "$0")/.."
mkdir -p artifacts

echo "== gofmt =="
fmt=$(gofmt -s -l .)
if [ -n "$fmt" ]; then
    echo "gofmt -s needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...
# Passing an analyzer flag restricts go vet to that analyzer, so the
# unsafe.Pointer audit is a second pass on top of the default suite.
go vet -unsafeptr ./...

echo "== snapvet (model conformance, determinism, radius/shard/observer contracts) =="
go run ./cmd/snapvet -tests ./...
go run ./cmd/snapvet -tests -json ./... > artifacts/snapvet.json
echo "snapvet findings artifact: artifacts/snapvet.json"

echo "== snapvet negative gate (planted-defect fixtures must yield exactly the expected findings) =="
go test ./internal/analysis/ -run 'TestGuardpure|TestWritelocal|TestDetrange|TestHotalloc|TestRadiusbound|TestSharddisjoint|TestObspure' -count=1

echo "== go build =="
go build ./...

echo "== go test (shuffled, repo-wide coverage artifact) =="
go test -shuffle=on -coverprofile=artifacts/coverage.out ./...
go tool cover -func=artifacts/coverage.out > artifacts/coverage.txt
tail -1 artifacts/coverage.txt

echo "== coverage floor (internal/explore >= 85% of statements) =="
go test ./internal/explore/ -coverprofile=artifacts/explore-cover.out -count=1 > /dev/null
explore_pct=$(go tool cover -func=artifacts/explore-cover.out | awk '/^total:/ { sub(/%/,"",$NF); print $NF }')
echo "internal/explore statement coverage: ${explore_pct}%"
awk -v p="$explore_pct" 'BEGIN { exit (p + 0 >= 85) ? 0 : 1 }' || {
    echo "internal/explore coverage ${explore_pct}% below the 85% floor" >&2
    exit 1
}

echo "== coverage floor (internal/telemetry >= 85% of statements) =="
go test ./internal/telemetry/ -coverprofile=artifacts/telemetry-cover.out -count=1 > /dev/null
telemetry_pct=$(go tool cover -func=artifacts/telemetry-cover.out | awk '/^total:/ { sub(/%/,"",$NF); print $NF }')
echo "internal/telemetry statement coverage: ${telemetry_pct}%"
awk -v p="$telemetry_pct" 'BEGIN { exit (p + 0 >= 85) ? 0 : 1 }' || {
    echo "internal/telemetry coverage ${telemetry_pct}% below the 85% floor" >&2
    exit 1
}

echo "== coverage floor (internal/event >= 85% of statements) =="
go test ./internal/event/ -coverprofile=artifacts/event-cover.out -count=1 > /dev/null
event_pct=$(go tool cover -func=artifacts/event-cover.out | awk '/^total:/ { sub(/%/,"",$NF); print $NF }')
echo "internal/event statement coverage: ${event_pct}%"
awk -v p="$event_pct" 'BEGIN { exit (p + 0 >= 85) ? 0 : 1 }' || {
    echo "internal/event coverage ${event_pct}% below the 85% floor" >&2
    exit 1
}

echo "== coverage floor (internal/analysis + dataflow >= 85% of statements) =="
go test ./internal/analysis/... -coverpkg=./internal/analysis/... -coverprofile=artifacts/analysis-cover.out -count=1 > /dev/null
analysis_pct=$(go tool cover -func=artifacts/analysis-cover.out | awk '/^total:/ { sub(/%/,"",$NF); print $NF }')
echo "internal/analysis (with dataflow) statement coverage: ${analysis_pct}%"
awk -v p="$analysis_pct" 'BEGIN { exit (p + 0 >= 85) ? 0 : 1 }' || {
    echo "internal/analysis coverage ${analysis_pct}% below the 85% floor" >&2
    exit 1
}

echo "== coverage floor (internal/service >= 85% of statements) =="
go test ./internal/service/ -coverprofile=artifacts/service-cover.out -count=1 > /dev/null
service_pct=$(go tool cover -func=artifacts/service-cover.out | awk '/^total:/ { sub(/%/,"",$NF); print $NF }')
echo "internal/service statement coverage: ${service_pct}%"
awk -v p="$service_pct" 'BEGIN { exit (p + 0 >= 85) ? 0 : 1 }' || {
    echo "internal/service coverage ${service_pct}% below the 85% floor" >&2
    exit 1
}

echo "== race: simulation engine, experiment executor, concurrent runtime, tracer =="
go test -race ./internal/sim/ ./internal/exp/ ./internal/runtime/ ./cmd/pifexp/ ./internal/obs/

echo "== race: flat engine (differential grid + sharded sweep) =="
go test -race ./internal/flat/

echo "== race: event engine (three-way differential + latency properties) =="
go test -race ./internal/event/

echo "== race: counterexample hunter =="
go test -race ./internal/hunt/

echo "== race: telemetry (concurrent engine writers + registry readers) =="
go test -race ./internal/telemetry/

echo "== race: service (open-loop generator + pipelined waves, parallel flat sweeps) =="
go test -race ./internal/service/ ./cmd/pifserve/

echo "== race: soak (reduced horizon) =="
go test -race -short -run TestSoakManyWaves -count=1 .

echo "== allocation budget (zero allocs/step after warm-up, disabled tracer included) =="
go test ./internal/sim/ -run 'TestZeroAllocs|TestCycleByteBudget|TestChoicesBufferReuse|TestCopyFromZeroAllocs' -count=1 -v
go test ./internal/obs/ -run TestDisabledTracerZeroAllocs -count=1 -v
go test ./internal/flat/ -run 'TestFlatZeroAllocsPerStep|TestFlatShardedZeroAllocsPerStep|TestFlatCopyFromZeroAllocs' -count=1 -v
go test ./internal/event/ -run TestEventZeroAllocsPerStep -count=1 -v
go test ./internal/telemetry/ -run 'TestDisabledAllocs|TestEnabledSteadyStateAllocs' -count=1 -v

echo "== determinism (serial vs parallel, optimized vs reference) =="
go test ./internal/sim/ -run TestRunnerMatchesReference -count=1
go test ./internal/exp/ -run TestSerialParallelIdentical -count=1
go test ./cmd/pifexp/ -run TestParallelStdoutByteIdentical -count=1

echo "== determinism (flat engine bit-identical to generic) =="
go test ./internal/flat/ -run TestFlatMatchesGeneric -count=1
go test ./internal/exp/ -run TestFlatEngineTablesByteIdentical -count=1
go test ./cmd/pifexp/ -run TestRunFlatEngineIdenticalStdout -count=1

echo "== determinism (event engine: three-way differential, latency repeatability) =="
go test ./internal/event/ -run 'TestEventMatchesThreeWay|TestEventTraceByteIdentical|TestEventRunDeterministic|TestEventLatencyMatchesInducedDaemon' -count=1

echo "== determinism + pipelining (service: pipelined == serial payloads, canonical bytes stable) =="
go test ./internal/service/ -run 'TestPipelinedMatchesSerial|TestServiceDeterminism|TestScenarioDumpReplayBitIdentical' -count=1
go test . -run TestMultiInitiatorCrossEngine -count=1

echo "== hunt smoke (clean protocol must hunt clean on a 2x4 grid) =="
go run ./cmd/pifhunt hunt -topo grid:2x4 -trials 4 -steps 4000

if [ "${CI_EXPLORE:-0}" = "1" ]; then
    echo "== explore smoke (deterministic state counts pinned, exhaustive on line-3) =="
    go run ./cmd/pifexplore run -topo line:3 -init faults:3 -expect-states 209
    go run ./cmd/pifexplore run -topo star:4 -init faults:3 -depth 6 -expect-states 357
    go run ./cmd/pifexplore certify -quick -json artifacts/explore-smoke.json
fi

if [ "${CI_SERVICE:-0}" = "1" ]; then
    echo "== service bench smoke (quick grid: pinned flat/ring:64 cell, byte-determinism) =="
    CI_SERVICE=1 go test ./cmd/pifserve/ -run TestServiceBenchSmoke -count=1 -v
fi

if [ "${CI_OVERHEAD:-0}" = "1" ]; then
    echo "== telemetry overhead gate (fully enabled <= 5% ns/step at N=100k) =="
    TELEMETRY_OVERHEAD=1 go test ./internal/telemetry/ -run TestTelemetryOverheadGate -count=1 -v
fi

if [ "${CI_FUZZ:-0}" = "1" ]; then
    echo "== fuzz smoke (engine oracles, injector recovery) =="
    go test ./internal/sim/ -run xxx -fuzz FuzzForceAged -fuzztime 10s
    go test ./internal/sim/ -run xxx -fuzz FuzzBitsetRoundAccounting -fuzztime 10s
    go test ./internal/fault/ -run xxx -fuzz FuzzInjectorRecovery -fuzztime 10s
    go test ./internal/flat/ -run xxx -fuzz FuzzFlatVsGeneric -fuzztime 10s
    go test ./internal/event/ -run xxx -fuzz FuzzThreeEngines -fuzztime 10s
    go test ./internal/hunt/ -run xxx -fuzz FuzzScenarioJSON -fuzztime 10s
    go test ./internal/service/ -run xxx -fuzz FuzzServicePipelined -fuzztime 10s
    go test . -run xxx -fuzz FuzzMultiNetworkWaves -fuzztime 10s
fi

echo "CI OK"
