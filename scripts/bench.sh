#!/bin/sh
# bench.sh — regenerate the committed benchmark reports reproducibly.
# Stdlib toolchain only.
#
#   sh scripts/bench.sh             # BENCH_sim.json + BENCH_scale.json + benchstat run
#   BENCH_SEED=7 sh scripts/bench.sh
#
# Both reports stamp go_version, gomaxprocs, and the VCS commit, so numbers
# taken on different machines are distinguishable; the RNG seed is fixed
# (default 1), so the *schedules* — steps, moves/step, daemon choices — are
# identical across regenerations and machines, and only the time columns
# move. The scale report additionally records the sharded sweep's worker
# count per cell: on a single-core box (gomaxprocs 1) those cells measure
# pool overhead, not speedup.
set -eu
cd "$(dirname "$0")/.."

SEED="${BENCH_SEED:-1}"

echo "== environment =="
go version
echo "GOMAXPROCS=${GOMAXPROCS:-default} (effective value is stamped inside the reports)"

echo "== BENCH_sim.json (N=64 hot path + full-suite experiment cell timings) =="
go run ./cmd/pifexp -parallel -seed "$SEED" -bench BENCH_sim.json > /dev/null

echo "== BENCH_scale.json (N up to 1M; generic vs flat vs sharded sweep) =="
go run ./cmd/pifexp -only NONE -seed "$SEED" -scale BENCH_scale.json

echo "== benchstat-trackable engine micro-benchmarks =="
go test -run xxx -bench 'BenchmarkStepGeneric|BenchmarkStepFlat|BenchmarkSweepParallel' \
    -benchmem -count=1 .

echo "bench OK"
