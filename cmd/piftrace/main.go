// Command piftrace analyzes the structured JSONL event traces emitted by
// the observability layer (internal/obs): it summarizes runs, reconstructs
// wave timelines and per-processor phase Gantt charts, re-checks the
// paper's Section-4 invariants offline by replaying the recorded schedule,
// and diffs two traces — the cross-binary determinism oracle.
//
// Usage:
//
//	piftrace summary FILE            totals, moves per action, wave table,
//	                                 wave-latency percentiles (p50/p95/p99
//	                                 rounds, and wall time when the trace was
//	                                 recorded with a clock)
//	piftrace timeline [-every k] FILE   phase Gantt (rows: processors,
//	                                 columns: round boundaries) + wave spans
//	piftrace spans [-o FILE] FILE    export causal wave spans as Chrome
//	                                 trace_event JSON — load the output in
//	                                 Perfetto (ui.perfetto.dev) or
//	                                 chrome://tracing
//	piftrace check FILE              offline replay: re-run the recorded
//	                                 schedule from the recorded initial
//	                                 snapshot, re-evaluate Properties 1–2
//	                                 and the domain invariants after every
//	                                 step, and verify the final state
//	                                 matches the recorded final snapshot
//	                                 bit for bit
//	piftrace diff FILE1 FILE2        first divergence between two traces
//	                                 (exit 1 when they diverge)
//
// Traces are produced by pifsim -events, the snappif.WithEventTrace
// network option, or any direct obs.Tracer user. summary and diff work on
// any trace; timeline needs snapshots and phase events; check additionally
// needs the topology (edge list) in the header.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"snappif/internal/check"
	"snappif/internal/core"
	"snappif/internal/obs"
	"snappif/internal/sim"
	"snappif/internal/telemetry"
	"snappif/internal/trace"
	"snappif/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "piftrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: piftrace <summary|timeline|spans|check|diff> [flags] FILE...")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		tr, err := readTraceArg(rest, 0)
		if err != nil {
			return err
		}
		return summary(out, tr)
	case "timeline":
		fs := flag.NewFlagSet("piftrace timeline", flag.ContinueOnError)
		every := fs.Int("every", 1, "sample every k-th round")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		tr, err := readTraceArg(fs.Args(), 0)
		if err != nil {
			return err
		}
		return timeline(out, tr, *every)
	case "spans":
		fs := flag.NewFlagSet("piftrace spans", flag.ContinueOnError)
		outPath := fs.String("o", "", "write the trace_event JSON to this file instead of stdout")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		tr, err := readTraceArg(fs.Args(), 0)
		if err != nil {
			return err
		}
		return spansCmd(out, *outPath, tr)
	case "check":
		tr, err := readTraceArg(rest, 0)
		if err != nil {
			return err
		}
		return offlineCheck(out, tr)
	case "diff":
		if len(rest) != 2 {
			return fmt.Errorf("usage: piftrace diff FILE1 FILE2")
		}
		a, err := readTraceArg(rest, 0)
		if err != nil {
			return err
		}
		b, err := readTraceArg(rest, 1)
		if err != nil {
			return err
		}
		return diff(out, a, b)
	default:
		return fmt.Errorf("unknown subcommand %q (want summary, timeline, spans, check, or diff)", cmd)
	}
}

// readTraceArg opens and decodes the i-th positional trace file.
func readTraceArg(args []string, i int) (*obs.Trace, error) {
	if i >= len(args) {
		return nil, fmt.Errorf("missing trace file argument")
	}
	f, err := os.Open(args[i])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := obs.ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", args[i], err)
	}
	return tr, nil
}

// summary prints the header, totals, per-action moves, and the wave table.
func summary(out io.Writer, tr *obs.Trace) error {
	if m := tr.Meta; m != nil {
		fmt.Fprintf(out, "protocol: %s  topology: %s (n=%d)  root: p%d  daemon: %s  seed: %d\n",
			m.Protocol, m.Graph, m.N, m.Root, m.Daemon, m.Seed)
	}
	if s := tr.Summary; s != nil {
		fmt.Fprintf(out, "totals: %d steps, %d moves, %d rounds, %d waves, %d runs\n",
			s.Steps, s.Moves, s.Rounds, s.Waves, s.Runs)
		if s.Dropped > 0 {
			fmt.Fprintf(out, "dropped: %d step events (recorder limit)\n", s.Dropped)
		}
		if len(s.MovesPerAction) > 0 {
			tbl := trace.NewTable("moves per action", "action", "moves")
			for _, name := range sortedKeys(s.MovesPerAction) {
				tbl.AddRow(name, s.MovesPerAction[name])
			}
			tbl.Render(out)
		}
	} else {
		fmt.Fprintln(out, "totals: trace has no summary event (truncated trace?)")
	}
	if waves := waveSpans(tr); len(waves) > 0 {
		tbl := trace.NewTable("waves", "wave", "msg", "start step", "end step", "start round", "end round", "rounds")
		for _, w := range waves {
			if w.endStep == 0 {
				tbl.AddRow(w.id, w.msg, w.startStep, "open", w.startRound, "-", "-")
				continue
			}
			tbl.AddRow(w.id, w.msg, w.startStep, w.endStep, w.startRound, w.endRound, w.endRound-w.startRound+1)
		}
		tbl.Render(out)
		waveLatency(out, waves)
	}
	return nil
}

// waveLatency prints the completed-wave latency percentiles: rounds always,
// wall time when the trace was recorded with a clock (obs.WithClock).
func waveLatency(out io.Writer, waves []waveSpan) {
	var rounds []int
	var walls []int64 // µs
	for _, w := range waves {
		if w.endStep == 0 {
			continue
		}
		rounds = append(rounds, w.endRound-w.startRound+1)
		if w.startTS > 0 && w.endTS >= w.startTS {
			walls = append(walls, w.endTS-w.startTS)
		}
	}
	if len(rounds) == 0 {
		return
	}
	sort.Ints(rounds)
	fmt.Fprintf(out, "wave latency (%d completed): rounds p50=%d p95=%d p99=%d\n",
		len(rounds), pctInt(rounds, 50), pctInt(rounds, 95), pctInt(rounds, 99))
	if len(walls) > 0 {
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		us := func(q int) time.Duration { return time.Duration(pct64(walls, q)) * time.Microsecond }
		fmt.Fprintf(out, "wave wall time (%d timed): p50=%v p95=%v p99=%v\n",
			len(walls), us(50), us(95), us(99))
	}
}

// pctInt is the nearest-rank q-th percentile of a sorted slice.
func pctInt(sorted []int, q int) int {
	return sorted[pctIdx(len(sorted), q)]
}

func pct64(sorted []int64, q int) int64 {
	return sorted[pctIdx(len(sorted), q)]
}

func pctIdx(n, q int) int {
	i := (n*q + 99) / 100 // ceil(n·q/100), nearest-rank
	if i < 1 {
		i = 1
	}
	return i - 1
}

// waveSpan is one reconstructed PIF wave.
type waveSpan struct {
	id                   int
	msg                  string
	startStep, endStep   int
	startRound, endRound int
	startTS, endTS       int64 // µs wall stamps, 0 when the trace has no clock
}

// waveSpans pairs wave start/end events.
func waveSpans(tr *obs.Trace) []waveSpan {
	var out []waveSpan
	open := make(map[int]int) // wave id -> index in out
	for _, ev := range tr.Events {
		if ev.T != "wave" {
			continue
		}
		switch ev.Kind {
		case "start":
			open[ev.Wave] = len(out)
			out = append(out, waveSpan{id: ev.Wave, msg: ev.M, startStep: ev.I, startRound: ev.Round, startTS: ev.TS})
		case "end":
			if i, ok := open[ev.Wave]; ok {
				out[i].endStep = ev.I
				out[i].endRound = ev.Round
				out[i].endTS = ev.TS
				delete(open, ev.Wave)
			}
		}
	}
	return out
}

// spansCmd exports the trace's causal wave spans as Chrome trace_event JSON.
func spansCmd(out io.Writer, path string, tr *obs.Trace) (err error) {
	spans, err := telemetry.SpansFromTrace(tr)
	if err != nil {
		return err
	}
	name := "piftrace"
	if tr.Meta != nil && tr.Meta.Protocol != "" {
		name = tr.Meta.Protocol
	}
	w := out
	if path != "" {
		f, cerr := os.Create(path)
		if cerr != nil {
			return cerr
		}
		// The close error is the write error on many filesystems.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	return telemetry.WriteTraceEvents(w, name, spans)
}

// timeline reconstructs the per-processor phase strips at round boundaries
// from the snapshots and phase events, and renders the Gantt chart plus the
// wave spans.
func timeline(out io.Writer, tr *obs.Trace, every int) error {
	if every < 1 {
		every = 1
	}
	var (
		cur    []byte
		strips []string
		run    int
	)
	flush := func() {
		if len(strips) == 0 {
			return
		}
		fmt.Fprintf(out, "run %d — one column per %s:\n", run, sampleName(every))
		viz.PhaseTimeline(out, strips)
		strips = strips[:0]
	}
	sawSnapshot := false
	for _, ev := range tr.Events {
		switch ev.T {
		case "run":
			flush()
			run = ev.Run
		case "init", "fault":
			sawSnapshot = true
			cur = []byte(ev.Pif)
			if ev.T == "fault" {
				fmt.Fprintf(out, "fault injected: %s\n", ev.Name)
			}
		case "phase":
			if cur != nil && ev.P < len(cur) && len(ev.To) == 1 {
				cur[ev.P] = ev.To[0]
			}
		case "round":
			if cur != nil && ev.Round%every == 0 {
				strips = append(strips, string(cur))
			}
		}
	}
	flush()
	if !sawSnapshot {
		return fmt.Errorf("trace has no state snapshots; record with snapshots and phase events enabled")
	}
	for _, w := range waveSpans(tr) {
		if w.endStep == 0 {
			fmt.Fprintf(out, "wave %d: rounds %d.. (open at end of trace), msg=%s\n", w.id, w.startRound, w.msg)
			continue
		}
		fmt.Fprintf(out, "wave %d: rounds %d..%d (%d rounds), steps %d..%d, msg=%s\n",
			w.id, w.startRound, w.endRound, w.endRound-w.startRound+1, w.startStep, w.endStep, w.msg)
	}
	return nil
}

func sampleName(every int) string {
	if every == 1 {
		return "round"
	}
	return fmt.Sprintf("%d rounds", every)
}

// offlineCheck replays the recorded schedule from the recorded initial
// snapshot and re-evaluates the Section-4 invariants after every step.
func offlineCheck(out io.Writer, tr *obs.Trace) error {
	g, err := tr.Graph()
	if err != nil {
		return err
	}
	m := tr.Meta
	var opts []core.Option
	if m.Lmax > 0 {
		opts = append(opts, core.WithLmax(m.Lmax))
	}
	if m.NPrime > 0 {
		opts = append(opts, core.WithNPrime(m.NPrime))
	}
	proto, err := core.New(g, m.Root, opts...)
	if err != nil {
		return err
	}
	if err := sameActions(m.Actions, proto.ActionNames()); err != nil {
		return err
	}

	// Cut the trace into replay segments: each snapshot (run start or fault
	// injection) re-bases the configuration; the steps that follow replay
	// from it.
	type segment struct {
		snap   *obs.Event
		script [][]sim.Choice
	}
	var (
		segs  []segment
		final *obs.Event
	)
	for _, ev := range tr.Events {
		switch ev.T {
		case "init", "fault":
			segs = append(segs, segment{snap: ev})
		case "final":
			final = ev
		case "step":
			if len(segs) == 0 {
				return fmt.Errorf("trace has step events before any state snapshot")
			}
			s := &segs[len(segs)-1]
			choices := make([]sim.Choice, len(ev.Exec))
			for i, pa := range ev.Exec {
				choices[i] = sim.Choice{Proc: pa[0], Action: pa[1]}
			}
			s.script = append(s.script, choices)
		}
	}

	var (
		steps, moves, rounds int
		violations           int
		cfg                  *sim.Configuration
	)
	for i, seg := range segs {
		if len(seg.script) == 0 {
			continue
		}
		cfg = sim.NewConfiguration(g, proto)
		if err := seg.snap.Restore(cfg); err != nil {
			return err
		}
		mon := check.NewMonitor(proto, check.StandardChecks())
		want := len(seg.script)
		res, err := sim.Run(cfg, proto, &sim.Replay{Script: seg.script}, sim.Options{
			MaxSteps:  want + 1,
			Seed:      1,
			Observers: []sim.Observer{mon},
			StopWhen:  func(rs *sim.RunState) bool { return rs.Steps >= want },
		})
		if err != nil {
			return fmt.Errorf("segment %d: replay: %w", i+1, err)
		}
		steps += res.Steps
		moves += res.Moves
		rounds += res.Rounds
		violations += len(mon.Violations)
		fmt.Fprintf(out, "segment %d (%s): %d steps, %d moves, %d rounds, %d invariant violations\n",
			i+1, seg.snap.T, res.Steps, res.Moves, res.Rounds, len(mon.Violations))
		for j, v := range mon.Violations {
			if j == 3 {
				fmt.Fprintf(out, "  … %d more\n", len(mon.Violations)-j)
				break
			}
			fmt.Fprintf(out, "  %s\n", v)
		}
	}

	if s := tr.Summary; s != nil {
		if steps != s.Steps || moves != s.Moves || rounds != s.Rounds {
			return fmt.Errorf("replay totals diverge from recorded summary: %d/%d/%d steps/moves/rounds vs %d/%d/%d",
				steps, moves, rounds, s.Steps, s.Moves, s.Rounds)
		}
		fmt.Fprintf(out, "totals match the recorded summary (%d steps, %d moves, %d rounds)\n",
			steps, moves, rounds)
	}
	if final != nil && cfg != nil {
		ref := sim.NewConfiguration(g, proto)
		if err := final.Restore(ref); err != nil {
			return err
		}
		for p := 0; p < cfg.N(); p++ {
			if core.At(cfg, p) != core.At(ref, p) {
				return fmt.Errorf("replayed final state diverges from the recorded snapshot at p%d: %v vs %v",
					p, core.At(cfg, p), core.At(ref, p))
			}
		}
		fmt.Fprintln(out, "final state matches the recorded snapshot bit for bit")
	}
	if violations > 0 {
		return fmt.Errorf("%d invariant violations", violations)
	}
	fmt.Fprintln(out, "offline check OK")
	return nil
}

// sameActions guards against replaying a trace with a protocol whose action
// numbering diverged from the recording binary's.
func sameActions(recorded, current []string) error {
	if len(recorded) == 0 {
		return nil
	}
	if len(recorded) != len(current) {
		return fmt.Errorf("trace records %d actions, this binary has %d", len(recorded), len(current))
	}
	for i := range recorded {
		if recorded[i] != current[i] {
			return fmt.Errorf("action %d is %q in the trace but %q in this binary", i, recorded[i], current[i])
		}
	}
	return nil
}

// diff prints the first divergence between two traces.
func diff(out io.Writer, a, b *obs.Trace) error {
	if d := obs.Diff(a, b); d != "" {
		fmt.Fprintln(out, d)
		return fmt.Errorf("traces diverge")
	}
	fmt.Fprintf(out, "traces are equivalent (%d events compared)\n", len(a.Events))
	return nil
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//snapvet:ok the keys are sorted immediately below, so iteration order never reaches the output
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
