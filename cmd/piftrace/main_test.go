package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snappif/internal/check"
	"snappif/internal/core"
	"snappif/internal/fault"
	"snappif/internal/graph"
	"snappif/internal/obs"
	"snappif/internal/sim"
)

// recordRun records one corrupted-start run to path and returns the result.
func recordRun(t *testing.T, path string, seed int64) sim.Result {
	t.Helper()
	g, err := graph.RandomConnected(10, 0.3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	cfg := sim.NewConfiguration(g, pr)
	fault.UniformRandom().Apply(cfg, pr, rand.New(rand.NewSource(5)))

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(f, obs.WithProtocol(pr))
	tr.BeginRun(g, "dist-random-0.50", seed, cfg)
	cyc := check.NewCycleObserver(pr)
	res, err := sim.Run(cfg, pr, sim.DistributedRandom{P: 0.5}, sim.Options{
		Seed:      seed,
		Observers: []sim.Observer{cyc, tr},
		StopWhen:  cyc.StopAfterCycles(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDiffAcceptance is the PR's acceptance criterion: a recorded trace of a
// corrupted-start run replays bit-identically through `piftrace diff`
// against a live rerun, and a perturbed rerun is detected.
func TestDiffAcceptance(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	c := filepath.Join(dir, "c.jsonl")
	recordRun(t, a, 11)
	recordRun(t, b, 11)
	recordRun(t, c, 12)

	var out bytes.Buffer
	if err := run([]string{"diff", a, b}, &out); err != nil {
		t.Fatalf("identical reruns diverge: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "equivalent") {
		t.Fatalf("diff output lacks verdict: %s", out.String())
	}

	out.Reset()
	if err := run([]string{"diff", a, c}, &out); err == nil {
		t.Fatalf("different seed not detected:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "diverge") {
		t.Fatalf("diff output lacks divergence report: %s", out.String())
	}
}

// TestCheckReplaysTrace replays the recorded schedule offline: invariants
// hold, totals match the summary, and the final state matches the snapshot.
func TestCheckReplaysTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	res := recordRun(t, path, 11)

	var out bytes.Buffer
	if err := run([]string{"check", path}, &out); err != nil {
		t.Fatalf("check failed: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"totals match the recorded summary",
		"final state matches the recorded snapshot bit for bit",
		"offline check OK",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("check output lacks %q:\n%s", want, got)
		}
	}
	if res.Steps == 0 {
		t.Fatal("recorded run made no steps")
	}
}

// TestCheckDetectsTampering proves check is a real verifier: a truncated
// schedule fails the totals cross-check and a corrupted final snapshot
// fails the bit-for-bit state comparison.
func TestCheckDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	recordRun(t, path, 11)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")

	// Tamper 1: drop every step event after the fifth.
	var truncated []string
	steps := 0
	for _, l := range lines {
		if strings.HasPrefix(l, `{"t":"step",`) {
			steps++
			if steps > 5 {
				continue
			}
		}
		truncated = append(truncated, l)
	}
	if steps <= 5 {
		t.Fatalf("recorded run has only %d steps", steps)
	}
	bad := filepath.Join(dir, "truncated.jsonl")
	if err := os.WriteFile(bad, []byte(strings.Join(truncated, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"check", bad}, &out); err == nil {
		t.Fatalf("truncated trace passed the offline check:\n%s", out.String())
	} else if !strings.Contains(err.Error(), "totals diverge") {
		t.Fatalf("unexpected detection: %v", err)
	}

	// Tamper 2: corrupt the recorded final snapshot's count vector.
	corrupted := append([]string(nil), lines...)
	tampered := false
	for i, l := range corrupted {
		if !strings.HasPrefix(l, `{"t":"final",`) {
			continue
		}
		var snap map[string]any
		if err := json.Unmarshal([]byte(l), &snap); err != nil {
			t.Fatal(err)
		}
		count := snap["count"].([]any)
		count[0] = count[0].(float64) + 7
		fixed, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		corrupted[i] = string(fixed)
		tampered = true
		break
	}
	if !tampered {
		t.Fatal("no final snapshot in trace")
	}
	bad2 := filepath.Join(dir, "corrupted.jsonl")
	if err := os.WriteFile(bad2, []byte(strings.Join(corrupted, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"check", bad2}, &out); err == nil {
		t.Fatalf("corrupted final snapshot passed the offline check:\n%s", out.String())
	}
}

// TestSummaryAndTimeline smoke-tests the reporting subcommands on a real
// trace.
func TestSummaryAndTimeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	res := recordRun(t, path, 11)

	var out bytes.Buffer
	if err := run([]string{"summary", path}, &out); err != nil {
		t.Fatalf("summary: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "protocol:") || !strings.Contains(got, "totals:") {
		t.Fatalf("summary output incomplete:\n%s", got)
	}
	if !strings.Contains(got, "waves") {
		t.Fatalf("summary lacks the wave table:\n%s", got)
	}

	out.Reset()
	if err := run([]string{"timeline", path}, &out); err != nil {
		t.Fatalf("timeline: %v", err)
	}
	got = out.String()
	if !strings.Contains(got, "p0") || !strings.Contains(got, "p9") {
		t.Fatalf("timeline lacks processor rows:\n%s", got)
	}
	if !strings.Contains(got, "wave 1: rounds") {
		t.Fatalf("timeline lacks wave spans:\n%s", got)
	}
	// Each Gantt row samples one column per round.
	for _, line := range strings.Split(got, "\n") {
		if !strings.HasPrefix(line, "p0") {
			continue
		}
		row := strings.TrimSpace(strings.TrimPrefix(line, "p0"))
		if len(row) != res.Rounds {
			t.Fatalf("p0 row has %d columns, run had %d rounds:\n%s", len(row), res.Rounds, got)
		}
	}

	out.Reset()
	if err := run([]string{"timeline", "-every", "2", path}, &out); err != nil {
		t.Fatalf("timeline -every 2: %v", err)
	}
}

// TestUsageErrors covers the CLI error paths.
func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no error on empty args")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Fatal("no error on unknown subcommand")
	}
	if err := run([]string{"summary"}, &out); err == nil {
		t.Fatal("no error on missing file")
	}
	if err := run([]string{"diff", "only-one"}, &out); err == nil {
		t.Fatal("no error on diff with one file")
	}
	if err := run([]string{"summary", filepath.Join(t.TempDir(), "nope.jsonl")}, &out); err == nil {
		t.Fatal("no error on nonexistent file")
	}
}
