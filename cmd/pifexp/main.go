// Command pifexp runs the experiment harness: for every result in the
// paper (Theorems 1–4, Properties 1–3, the snap-stabilization claim, and
// the baseline comparisons) it regenerates the corresponding table and
// prints it, together with a reproduction verdict. EXPERIMENTS.md records
// the output of a full run.
//
// Usage:
//
//	pifexp [-quick] [-trials N] [-seed S] [-only E4[,E7]] [-md] [-parallel]
//	       [-engine generic|flat|event] [-latency DIST] [-parallel-sweep W]
//	       [-bench FILE] [-scale FILE]
//	       [-telemetry] [-spans FILE] [-flight FILE]
//	       [-http ADDR] [-cpuprofile FILE] [-memprofile FILE]
//
// -parallel fans both the experiments and their table cells across
// GOMAXPROCS workers; every cell derives its randomness from its own seed,
// so stdout is byte-identical to a serial run (timing goes to stderr).
// -engine=flat runs the cycle-based experiments on the struct-of-arrays
// kernel (internal/flat); -engine=event runs them on the discrete-event
// scheduler (internal/event). The engines are bit-identical, so the tables
// do not change — only the wall clock does. -parallel-sweep W additionally
// shards the flat engine's guard sweep over W workers (still
// bit-identical; see DESIGN.md §9). -latency DIST (event engine only)
// switches to asynchronous message-latency scheduling with the named
// per-link distribution — const:K, uniform:LO-HI, or pareto:a=A,cap=C —
// replacing the daemon; telemetry steps and span timestamps are then in
// virtual time (see DESIGN.md §12).
// -bench additionally measures the simulation hot path and writes a JSON
// report (steps/sec, allocs/step) to the given file. -scale measures the
// large-N grid — N up to 10^6 on line/ring/grid/random topologies, generic
// vs flat vs sharded vs event — and writes the BENCH_scale JSON report.
//
// -telemetry turns on the large-N observability layer (internal/telemetry):
// sharded counters, wave-latency histograms, and the sampled time series,
// all published under /debug/vars and summarized on stderr at exit. -spans
// additionally writes the causal wave spans as Chrome trace_event JSON that
// loads in Perfetto (or chrome://tracing); -flight keeps the flight
// recorder running and dumps the last recorded window as a replayable
// pifhunt scenario. Both imply -telemetry; both follow one run at a time,
// so they require a serial run (no -parallel).
//
// -http serves live observability while the experiments run: the harness
// metrics at /debug/vars (expvar; see the "snappif" variable), a /healthz
// liveness endpoint, and the standard pprof profiles at /debug/pprof/; the
// registry also carries meta.* stamps (engine, seed, topology suite, start
// time) identifying the run. -cpuprofile and -memprofile write one-shot
// pprof profiles covering the whole run.
package main

import (
	"bytes"
	_ "expvar" // registers /debug/vars on the default mux
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"snappif/internal/event"
	"snappif/internal/exp"
	"snappif/internal/obs"
	"snappif/internal/telemetry"
	"snappif/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pifexp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("pifexp", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "small topologies and few trials")
		trials   = fs.Int("trials", 0, "trials per table cell (0 = default)")
		seed     = fs.Int64("seed", 1, "random seed")
		only     = fs.String("only", "", "comma-separated experiment IDs (e.g. E1,E4)")
		markdown = fs.Bool("md", false, "emit tables as markdown")
		csvDir   = fs.String("csv", "", "also write each table as <dir>/<id>.csv")
		parallel = fs.Bool("parallel", false, "fan experiments and table cells across GOMAXPROCS workers (stdout identical to serial)")
		engine   = fs.String("engine", "generic", "simulation engine for the cycle-based experiments: generic, flat, or event (tables are byte-identical; flat is the large-N SoA kernel, event the discrete-event scheduler)")
		latency  = fs.String("latency", "", "event engine only: per-link latency distribution (const:K, uniform:LO-HI, pareto:a=A,cap=C); replaces the daemon with asynchronous virtual-time scheduling")
		sweepW   = fs.Int("parallel-sweep", 0, "flat engine only: worker count for the parallel sharded guard sweep (0 or 1 = serial; bit-identical either way)")
		bench    = fs.String("bench", "", "measure the simulation hot path and write a JSON report to this file")
		scale    = fs.String("scale", "", "measure the large-N scaling grid (generic vs flat vs sharded) and write a BENCH_scale JSON report to this file")
		telem    = fs.Bool("telemetry", false, "enable the aggregating telemetry layer (sharded counters, wave histograms, sampled time series); published at /debug/vars, summarized on stderr")
		spansOut = fs.String("spans", "", "write causal wave spans as Chrome trace_event JSON (Perfetto-loadable) to this file; implies -telemetry, serial runs only")
		flightTo = fs.String("flight", "", "run the flight recorder and dump its last window as a replayable pifhunt scenario (JSON) to this file; implies -telemetry, serial runs only")
		httpAddr = fs.String("http", "", "serve /debug/vars, /healthz, and /debug/pprof on this address while running (e.g. localhost:6060)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, cerr := os.Create(*cpuProf)
		if cerr != nil {
			return cerr
		}
		// A profile written to a full disk is silently truncated unless the
		// close error reaches the exit code; the deferred close runs after
		// StopCPUProfile has flushed.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("cpuprofile: %w", cerr)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, ferr := os.Create(*memProf)
			if ferr != nil {
				if err == nil {
					err = fmt.Errorf("memprofile: %w", ferr)
				}
				return
			}
			runtime.GC()
			werr := pprof.WriteHeapProfile(f)
			cerr := f.Close()
			if err == nil && werr != nil {
				err = fmt.Errorf("memprofile: %w", werr)
			}
			if err == nil && cerr != nil {
				err = fmt.Errorf("memprofile: %w", cerr)
			}
		}()
	}
	if *latency != "" {
		if *engine != "event" {
			return fmt.Errorf("-latency requires -engine=event (got -engine=%s)", *engine)
		}
		if _, lerr := event.ParseLatency(*latency); lerr != nil {
			return lerr
		}
	}
	metrics := obs.NewRegistry()
	metrics.Publish("snappif")
	stampMeta(metrics, *engine, *latency, *seed, *quick, *sweepW)

	var tel *telemetry.Telemetry
	var vclock *event.VirtualClock
	if *telem || *spansOut != "" || *flightTo != "" {
		if *parallel && (*spansOut != "" || *flightTo != "") {
			return fmt.Errorf("-spans and -flight follow one run at a time and need a serial run; drop -parallel")
		}
		//snapvet:ok telemetry clock base for span timestamps; timing fields are measurement output, not engine state
		base := time.Now()
		tcfg := telemetry.Config{
			// Monotonic-delta clock: durations survive wall-clock steps.
			//snapvet:ok monotonic telemetry clock; timing fields are measurement output, not engine state
			Clock:  func() int64 { return int64(time.Since(base)) },
			Timing: true,
		}
		if *latency != "" {
			// Asynchronous event runs stamp spans in virtual time: the
			// runner publishes its tick counter through the shared clock, so
			// span durations are measured in ticks, not wall nanoseconds.
			vclock = new(event.VirtualClock)
			tcfg.Clock = vclock.Now
		}
		if *flightTo != "" {
			tcfg.FlightDepth = 8
		}
		tel = telemetry.New(tcfg)
		tel.PublishTo(metrics)
	}

	if *httpAddr != "" {
		// expvar and net/http/pprof register themselves on the default mux;
		// the server outlives run() only until main exits.
		serveHealthz(metrics)
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pifexp: http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pifexp: serving /debug/vars, /healthz, and /debug/pprof on %s\n", *httpAddr)
	}

	want := make(map[string]bool)
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	timings := &trace.Timings{}
	opt := exp.Options{
		Quick:        *quick,
		Trials:       *trials,
		Seed:         *seed,
		Parallel:     *parallel,
		Timings:      timings,
		Metrics:      metrics,
		Engine:       *engine,
		Latency:      *latency,
		VClock:       vclock,
		SweepWorkers: *sweepW,
		Telemetry:    tel,
	}

	var selected []exp.Experiment
	for _, e := range exp.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		selected = append(selected, e)
	}

	// Each experiment renders into its own buffer; buffers are flushed to
	// out in registry order, so stdout is identical whether the experiments
	// ran sequentially or concurrently. Wall-clock timing goes to stderr —
	// it is the one line that legitimately differs between the modes.
	type result struct {
		buf     bytes.Buffer
		elapsed time.Duration
		failed  bool
		err     error
	}
	results := make([]result, len(selected))
	runOne := func(i int) {
		e, r := selected[i], &results[i]
		//snapvet:ok experiment harness timing recorded in the artifact; never feeds engine state
		start := time.Now()
		o, err := e.Run(opt)
		//snapvet:ok experiment harness timing recorded in the artifact; never feeds engine state
		r.elapsed = time.Since(start)
		if err != nil {
			r.err = fmt.Errorf("%s: %w", e.ID, err)
			return
		}
		fmt.Fprintf(&r.buf, "=== %s — %s\n", e.ID, e.Paper)
		if *markdown {
			o.Table.Markdown(&r.buf)
		} else {
			o.Table.Render(&r.buf)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.ID, o.Table); err != nil {
				r.err = err
				return
			}
		}
		ok := o.BoundExceeded == 0 && o.SnapViolations == 0
		verdict := "REPRODUCED"
		if !ok {
			verdict = "FAILED"
			r.failed = true
		}
		fmt.Fprintf(&r.buf, "verdict: %s (bound exceeded: %d, snap violations: %d, baseline violations: %d)\n\n",
			verdict, o.BoundExceeded, o.SnapViolations, o.BaselineViolations)
	}
	if *parallel {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(selected) {
			workers = len(selected)
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					runOne(i)
				}
			}()
		}
		for i := range selected {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i := range selected {
			runOne(i)
		}
	}

	failures := 0
	for i := range results {
		if results[i].err != nil {
			return results[i].err
		}
		if _, err := io.Copy(out, &results[i].buf); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pifexp: %s %.1fs\n", selected[i].ID, results[i].elapsed.Seconds())
		if results[i].failed {
			failures++
		}
	}
	if tel != nil {
		if err := finishTelemetry(tel, *spansOut, *flightTo); err != nil {
			return err
		}
	}
	if *bench != "" {
		if err := writeBench(*bench, timings); err != nil {
			return err
		}
	}
	if *scale != "" {
		if err := writeScale(*scale, *seed); err != nil {
			return err
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiments failed", failures)
	}
	return nil
}

// stampMeta registers the run-identifying meta.* Text variables, so
// /debug/vars (and /healthz) answer "what is this process running" without
// grepping logs.
func stampMeta(reg *obs.Registry, engine, latency string, seed int64, quick bool, sweepW int) {
	suite := "full"
	if quick {
		suite = "quick"
	}
	stamp := func(name, value string) {
		t := new(obs.Text)
		t.Set(value)
		reg.Register(name, t)
	}
	stamp("meta.engine", engine)
	stamp("meta.latency", latency)
	stamp("meta.seed", fmt.Sprint(seed))
	stamp("meta.topology_suite", suite)
	stamp("meta.sweep_workers", fmt.Sprint(sweepW))
	stamp("meta.go", runtime.Version())
	//snapvet:ok run timestamp in the artifact metadata; never feeds engine state
	stamp("meta.started", time.Now().UTC().Format(time.RFC3339))
}

// healthz registration is once-guarded because run() is re-entered by tests
// and the default mux panics on duplicate patterns; the handler reads the
// latest registry through the atomic pointer so re-runs stay visible.
var (
	healthzOnce sync.Once
	healthzReg  atomic.Pointer[obs.Registry]
)

func serveHealthz(reg *obs.Registry) {
	healthzReg.Store(reg)
	healthzOnce.Do(func() {
		http.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			reg := healthzReg.Load()
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"status\":\"ok\",\"engine\":%s,\"seed\":%s,\"started\":%s}\n",
				reg.Text("meta.engine"),
				reg.Text("meta.seed"),
				reg.Text("meta.started"))
		})
	})
}

// finishTelemetry prints the end-of-run telemetry summary to stderr and
// writes the optional span/flight artifacts.
func finishTelemetry(tel *telemetry.Telemetry, spansPath, flightPath string) error {
	steps, moves := tel.Totals()
	waves, abn := tel.Waves()
	wr := tel.Hist("wave_rounds")
	fmt.Fprintf(os.Stderr,
		"pifexp: telemetry: %d steps, %d moves, %d waves (%d abnormal); wave rounds p50≤%d p95≤%d p99≤%d\n",
		steps, moves, waves, abn, wr.Quantile(0.50), wr.Quantile(0.95), wr.Quantile(0.99))
	if spansPath != "" {
		f, err := os.Create(spansPath)
		if err != nil {
			return err
		}
		if err := tel.WriteSpans(f); err != nil {
			f.Close()
			return fmt.Errorf("spans: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("spans: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pifexp: wrote %d wave spans to %s (load in Perfetto or chrome://tracing)\n",
			len(tel.Spans()), spansPath)
	}
	if flightPath != "" {
		sc, err := tel.DumpScenario()
		if err != nil {
			return fmt.Errorf("flight: %w", err)
		}
		data, err := sc.Marshal()
		if err != nil {
			return fmt.Errorf("flight: %w", err)
		}
		if err := os.WriteFile(flightPath, data, 0o644); err != nil {
			return fmt.Errorf("flight: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pifexp: flight recorder dumped %s (replay with: pifhunt replay -in %s)\n",
			flightPath, flightPath)
	}
	return nil
}

// writeCSV writes one experiment table to <dir>/<id>.csv.
func writeCSV(dir, id string, tbl *trace.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, strings.ToLower(id)+".csv"))
	if err != nil {
		return err
	}
	if err := tbl.CSV(f); err != nil {
		f.Close()
		return err
	}
	// The close error is the write error on many filesystems; losing it
	// would report a truncated CSV as success.
	return f.Close()
}
