// Command pifexp runs the experiment harness: for every result in the
// paper (Theorems 1–4, Properties 1–3, the snap-stabilization claim, and
// the baseline comparisons) it regenerates the corresponding table and
// prints it, together with a reproduction verdict. EXPERIMENTS.md records
// the output of a full run.
//
// Usage:
//
//	pifexp [-quick] [-trials N] [-seed S] [-only E4[,E7]] [-md]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"snappif/internal/exp"
	"snappif/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pifexp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pifexp", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "small topologies and few trials")
		trials   = fs.Int("trials", 0, "trials per table cell (0 = default)")
		seed     = fs.Int64("seed", 1, "random seed")
		only     = fs.String("only", "", "comma-separated experiment IDs (e.g. E1,E4)")
		markdown = fs.Bool("md", false, "emit tables as markdown")
		csvDir   = fs.String("csv", "", "also write each table as <dir>/<id>.csv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := make(map[string]bool)
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	opt := exp.Options{Quick: *quick, Trials: *trials, Seed: *seed}
	failures := 0
	for _, e := range exp.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		o, err := e.Run(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(out, "=== %s — %s (%.1fs)\n", e.ID, e.Paper, time.Since(start).Seconds())
		if *markdown {
			o.Table.Markdown(out)
		} else {
			o.Table.Render(out)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.ID, o.Table); err != nil {
				return err
			}
		}
		ok := o.BoundExceeded == 0 && o.SnapViolations == 0
		verdict := "REPRODUCED"
		if !ok {
			verdict = "FAILED"
			failures++
		}
		fmt.Fprintf(out, "verdict: %s (bound exceeded: %d, snap violations: %d, baseline violations: %d)\n\n",
			verdict, o.BoundExceeded, o.SnapViolations, o.BaselineViolations)
	}
	if failures > 0 {
		return fmt.Errorf("%d experiments failed", failures)
	}
	return nil
}

// writeCSV writes one experiment table to <dir>/<id>.csv.
func writeCSV(dir, id string, tbl *trace.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, strings.ToLower(id)+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.CSV(f)
}
