// Command pifexp runs the experiment harness: for every result in the
// paper (Theorems 1–4, Properties 1–3, the snap-stabilization claim, and
// the baseline comparisons) it regenerates the corresponding table and
// prints it, together with a reproduction verdict. EXPERIMENTS.md records
// the output of a full run.
//
// Usage:
//
//	pifexp [-quick] [-trials N] [-seed S] [-only E4[,E7]] [-md] [-parallel]
//	       [-engine generic|flat] [-parallel-sweep W] [-bench FILE] [-scale FILE]
//	       [-http ADDR] [-cpuprofile FILE] [-memprofile FILE]
//
// -parallel fans both the experiments and their table cells across
// GOMAXPROCS workers; every cell derives its randomness from its own seed,
// so stdout is byte-identical to a serial run (timing goes to stderr).
// -engine=flat runs the cycle-based experiments on the struct-of-arrays
// kernel (internal/flat); the engines are bit-identical, so the tables do
// not change — only the wall clock does. -parallel-sweep W additionally
// shards the flat engine's guard sweep over W workers (still
// bit-identical; see DESIGN.md §9).
// -bench additionally measures the simulation hot path and writes a JSON
// report (steps/sec, allocs/step) to the given file. -scale measures the
// large-N grid — N up to 10^6 on line/ring/grid/random topologies, generic
// vs flat vs sharded — and writes the BENCH_scale JSON report.
//
// -http serves live observability while the experiments run: the harness
// metrics at /debug/vars (expvar; see the "snappif" variable) and the
// standard pprof profiles at /debug/pprof/. -cpuprofile and -memprofile
// write one-shot pprof profiles covering the whole run.
package main

import (
	"bytes"
	_ "expvar" // registers /debug/vars on the default mux
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"snappif/internal/exp"
	"snappif/internal/obs"
	"snappif/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pifexp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("pifexp", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "small topologies and few trials")
		trials   = fs.Int("trials", 0, "trials per table cell (0 = default)")
		seed     = fs.Int64("seed", 1, "random seed")
		only     = fs.String("only", "", "comma-separated experiment IDs (e.g. E1,E4)")
		markdown = fs.Bool("md", false, "emit tables as markdown")
		csvDir   = fs.String("csv", "", "also write each table as <dir>/<id>.csv")
		parallel = fs.Bool("parallel", false, "fan experiments and table cells across GOMAXPROCS workers (stdout identical to serial)")
		engine   = fs.String("engine", "generic", "simulation engine for the cycle-based experiments: generic or flat (tables are byte-identical; flat is the large-N SoA kernel)")
		sweepW   = fs.Int("parallel-sweep", 0, "flat engine only: worker count for the parallel sharded guard sweep (0 or 1 = serial; bit-identical either way)")
		bench    = fs.String("bench", "", "measure the simulation hot path and write a JSON report to this file")
		scale    = fs.String("scale", "", "measure the large-N scaling grid (generic vs flat vs sharded) and write a BENCH_scale JSON report to this file")
		httpAddr = fs.String("http", "", "serve /debug/vars and /debug/pprof on this address while running (e.g. localhost:6060)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, cerr := os.Create(*cpuProf)
		if cerr != nil {
			return cerr
		}
		// A profile written to a full disk is silently truncated unless the
		// close error reaches the exit code; the deferred close runs after
		// StopCPUProfile has flushed.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("cpuprofile: %w", cerr)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, ferr := os.Create(*memProf)
			if ferr != nil {
				if err == nil {
					err = fmt.Errorf("memprofile: %w", ferr)
				}
				return
			}
			runtime.GC()
			werr := pprof.WriteHeapProfile(f)
			cerr := f.Close()
			if err == nil && werr != nil {
				err = fmt.Errorf("memprofile: %w", werr)
			}
			if err == nil && cerr != nil {
				err = fmt.Errorf("memprofile: %w", cerr)
			}
		}()
	}
	metrics := obs.NewRegistry()
	metrics.Publish("snappif")
	if *httpAddr != "" {
		// expvar and net/http/pprof register themselves on the default mux;
		// the server outlives run() only until main exits.
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pifexp: http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pifexp: serving /debug/vars and /debug/pprof on %s\n", *httpAddr)
	}

	want := make(map[string]bool)
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	timings := &trace.Timings{}
	opt := exp.Options{
		Quick:        *quick,
		Trials:       *trials,
		Seed:         *seed,
		Parallel:     *parallel,
		Timings:      timings,
		Metrics:      metrics,
		Engine:       *engine,
		SweepWorkers: *sweepW,
	}

	var selected []exp.Experiment
	for _, e := range exp.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		selected = append(selected, e)
	}

	// Each experiment renders into its own buffer; buffers are flushed to
	// out in registry order, so stdout is identical whether the experiments
	// ran sequentially or concurrently. Wall-clock timing goes to stderr —
	// it is the one line that legitimately differs between the modes.
	type result struct {
		buf     bytes.Buffer
		elapsed time.Duration
		failed  bool
		err     error
	}
	results := make([]result, len(selected))
	runOne := func(i int) {
		e, r := selected[i], &results[i]
		start := time.Now()
		o, err := e.Run(opt)
		r.elapsed = time.Since(start)
		if err != nil {
			r.err = fmt.Errorf("%s: %w", e.ID, err)
			return
		}
		fmt.Fprintf(&r.buf, "=== %s — %s\n", e.ID, e.Paper)
		if *markdown {
			o.Table.Markdown(&r.buf)
		} else {
			o.Table.Render(&r.buf)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.ID, o.Table); err != nil {
				r.err = err
				return
			}
		}
		ok := o.BoundExceeded == 0 && o.SnapViolations == 0
		verdict := "REPRODUCED"
		if !ok {
			verdict = "FAILED"
			r.failed = true
		}
		fmt.Fprintf(&r.buf, "verdict: %s (bound exceeded: %d, snap violations: %d, baseline violations: %d)\n\n",
			verdict, o.BoundExceeded, o.SnapViolations, o.BaselineViolations)
	}
	if *parallel {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(selected) {
			workers = len(selected)
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					runOne(i)
				}
			}()
		}
		for i := range selected {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i := range selected {
			runOne(i)
		}
	}

	failures := 0
	for i := range results {
		if results[i].err != nil {
			return results[i].err
		}
		if _, err := io.Copy(out, &results[i].buf); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pifexp: %s %.1fs\n", selected[i].ID, results[i].elapsed.Seconds())
		if results[i].failed {
			failures++
		}
	}
	if *bench != "" {
		if err := writeBench(*bench, timings); err != nil {
			return err
		}
	}
	if *scale != "" {
		if err := writeScale(*scale, *seed); err != nil {
			return err
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiments failed", failures)
	}
	return nil
}

// writeCSV writes one experiment table to <dir>/<id>.csv.
func writeCSV(dir, id string, tbl *trace.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, strings.ToLower(id)+".csv"))
	if err != nil {
		return err
	}
	if err := tbl.CSV(f); err != nil {
		f.Close()
		return err
	}
	// The close error is the write error on many filesystems; losing it
	// would report a truncated CSV as success.
	return f.Close()
}
