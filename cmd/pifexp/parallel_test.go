package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestParallelStdoutByteIdentical is the CLI half of the determinism
// contract: -parallel must not change a single byte of stdout. Experiments
// render into per-experiment buffers flushed in registry order, and every
// table cell seeds its own RNGs, so the fan-out is invisible in the output.
func TestParallelStdoutByteIdentical(t *testing.T) {
	ids := "E1,E2,E8,E9,F1"
	var serial, parallel bytes.Buffer
	if err := run([]string{"-quick", "-only", ids}, &serial); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if err := run([]string{"-quick", "-only", ids, "-parallel"}, &parallel); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("stdout differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

// TestBenchReport exercises -bench: the emitted JSON must parse, carry one
// entry per measured cell, and show the zero-allocation steady state the
// simulation engine guarantees.
func TestBenchReport(t *testing.T) {
	if testing.Short() {
		t.Skip("bench measurement is seconds-long")
	}
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	var out bytes.Buffer
	if err := run([]string{"-quick", "-only", "E1", "-parallel", "-bench", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("bench report not written: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench report does not parse: %v", err)
	}
	if rep.GoVersion == "" || rep.GOMAXPROCS < 1 {
		t.Errorf("missing environment fields: %+v", rep)
	}
	if len(rep.Cells) == 0 {
		t.Fatal("bench report has no cells")
	}
	for _, c := range rep.Cells {
		if c.Steps <= 0 || c.StepsPerSec <= 0 || c.NsPerStep <= 0 {
			t.Errorf("cell %s/%s: non-positive throughput: %+v", c.Topology, c.Daemon, c)
		}
		if c.AllocsPerStep > 0.01 {
			t.Errorf("cell %s/%s: %.4f allocs/step, want ~0", c.Topology, c.Daemon, c.AllocsPerStep)
		}
	}
	if len(rep.CellTimes) == 0 {
		t.Error("bench report carries no experiment cell timings")
	}
}
