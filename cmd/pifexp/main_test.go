package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelectedExperiments(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-trials", "1", "-only", "E1,E6"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"=== E1", "=== E6", "REPRODUCED"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "=== E2") {
		t.Fatal("-only filter ignored")
	}
	if strings.Contains(got, "FAILED") {
		t.Fatalf("an experiment failed:\n%s", got)
	}
}

func TestRunMarkdownOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-trials", "1", "-only", "E1", "-md"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "| topology |") {
		t.Fatalf("markdown table missing:\n%s", out.String())
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite in -short mode")
	}
	var out strings.Builder
	if err := run([]string{"-quick", "-trials", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "REPRODUCED"); got != 18 {
		t.Fatalf("%d/18 experiments reproduced:\n%s", got, out.String())
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-quick", "-trials", "1", "-only", "E1", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "topology,") {
		t.Fatalf("unexpected CSV header: %q", string(data[:40]))
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}
