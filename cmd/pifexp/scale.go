package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"snappif/internal/core"
	"snappif/internal/event"
	"snappif/internal/exp"
	"snappif/internal/flat"
	"snappif/internal/graph"
	"snappif/internal/sim"
)

// scaleCell is one measured (topology, N, engine) point of the scaling
// grid. SweepWorkers is 0 for the generic engine and the flat serial mode;
// the sharded mode records its worker count, so a reader can tell which
// numbers were taken on a single-core box (compare against gomaxprocs in
// the report header — with GOMAXPROCS=1 the sharded cells measure pool
// overhead, not speedup).
type scaleCell struct {
	Topology      string  `json:"topology"`
	N             int     `json:"n"`
	Engine        string  `json:"engine"`
	SweepWorkers  int     `json:"sweep_workers,omitempty"`
	Daemon        string  `json:"daemon"`
	Steps         int     `json:"steps"`
	NsPerStep     float64 `json:"ns_per_step"`
	StepsPerSec   float64 `json:"steps_per_sec"`
	MovesPerStep  float64 `json:"moves_per_step"`
	AllocsPerStep float64 `json:"allocs_per_step"`
}

// scaleReport is the BENCH_scale.json schema: the large-N companion to
// BENCH_sim.json. Every cell runs the snap-PIF protocol from the clean
// start under the synchronous daemon with a fixed seed, so the schedule —
// and therefore moves/step — is identical for every engine at a given
// (topology, N); only the time columns may differ.
type scaleReport struct {
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	Commit     string      `json:"commit"`
	Seed       int64       `json:"seed"`
	Cells      []scaleCell `json:"cells"`
}

// scalePoint is one N of the grid: the measured step count shrinks as N
// grows so the whole grid stays minutes, not hours; genericOK gates the
// interface-based engine out of the sizes where a single cell would take
// longer than the rest of the grid combined.
type scalePoint struct {
	n         int
	warmup    int
	steps     int
	genericOK bool
}

var scalePoints = []scalePoint{
	{n: 64, warmup: 2000, steps: 50_000, genericOK: true},
	{n: 1_000, warmup: 2000, steps: 20_000, genericOK: true},
	{n: 10_000, warmup: 1000, steps: 5_000, genericOK: true},
	{n: 100_000, warmup: 300, steps: 1_000, genericOK: false},
	{n: 1_000_000, warmup: 100, steps: 300, genericOK: false},
}

// scaleTopologies builds the four topology families at size n. The random
// family is the degree-bounded sparse graph (a 1M-node Erdős–Rényi graph
// would need ~10^11 edge draws); its seed derives from n so every run of
// the emitter measures the same graphs.
func scaleTopologies(n int, seed int64) ([]*graph.Graph, error) {
	side := int(math.Round(math.Sqrt(float64(n))))
	rng := rand.New(rand.NewSource(seed + int64(n)))
	var out []*graph.Graph
	for _, b := range []func() (*graph.Graph, error){
		func() (*graph.Graph, error) { return graph.Line(n) },
		func() (*graph.Graph, error) { return graph.Ring(n) },
		func() (*graph.Graph, error) { return graph.Grid(side, (n+side-1)/side) },
		func() (*graph.Graph, error) { return graph.RandomSparse(n, n/4, rng) },
	} {
		g, err := b()
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

// stepper abstracts the two engines' stepping loops for measurement.
type stepper interface {
	Step() (bool, error)
	Moves() int
}

type genericStepper struct{ r *sim.Runner }

func (s genericStepper) Step() (bool, error) { return s.r.Step() }
func (s genericStepper) Moves() int          { return s.r.Result().Moves }

type flatStepper struct{ r *flat.Runner }

func (s flatStepper) Step() (bool, error) { return s.r.Step() }
func (s flatStepper) Moves() int          { return s.r.Result().Moves }

type eventStepper struct{ r *event.Runner }

func (s eventStepper) Step() (bool, error) { return s.r.Step() }
func (s eventStepper) Moves() int          { return s.r.Result().Moves }

// measureStepper warms a stepper and measures ns/step, steps/sec,
// moves/step, and allocs/step over the given number of committed steps.
func measureStepper(s stepper, warmup, steps int) (ns, sps, mps, aps float64, err error) {
	for i := 0; i < warmup; i++ {
		if done, err := s.Step(); done {
			return 0, 0, 0, 0, fmt.Errorf("scale: run ended during warm-up: %v", err)
		}
	}
	movesBefore := s.Moves()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	//snapvet:ok scaling-benchmark wall time is the measured quantity itself
	start := time.Now()
	for i := 0; i < steps; i++ {
		if done, err := s.Step(); done {
			return 0, 0, 0, 0, fmt.Errorf("scale: run ended during measurement: %v", err)
		}
	}
	//snapvet:ok scaling-benchmark wall time is the measured quantity itself
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	fs := float64(steps)
	return float64(elapsed.Nanoseconds()) / fs,
		fs / elapsed.Seconds(),
		float64(s.Moves()-movesBefore) / fs,
		float64(m1.Mallocs-m0.Mallocs) / fs,
		nil
}

// measureScaleCell measures one engine on one graph. engine is "generic",
// "flat", "flat-sharded", or "event"; workers only applies to the sharded
// mode.
func measureScaleCell(g *graph.Graph, engine string, workers int, pt scalePoint, seed int64) (scaleCell, error) {
	pr, err := core.New(g, 0)
	if err != nil {
		return scaleCell{}, err
	}
	d := sim.Synchronous{}
	simOpts := sim.Options{Seed: seed, MaxSteps: pt.warmup + pt.steps + 1}
	var s stepper
	var closer interface{ Close() }
	switch engine {
	case "generic":
		cfg := sim.NewConfiguration(g, pr)
		s = genericStepper{r: sim.NewRunner(cfg, pr, d, simOpts)}
	case "flat", "flat-sharded":
		kern, err := flat.FromCore(pr)
		if err != nil {
			return scaleCell{}, err
		}
		fc, err := flat.NewConfig(kern)
		if err != nil {
			return scaleCell{}, err
		}
		fopts := flat.Options{Options: simOpts}
		if engine == "flat-sharded" {
			fopts.SweepWorkers = workers
			fopts.MinSweep = 1
		}
		fr, err := flat.NewRunner(fc, kern, d, fopts)
		if err != nil {
			return scaleCell{}, err
		}
		s, closer = flatStepper{r: fr}, fr
	case "event":
		kern, err := flat.FromCore(pr)
		if err != nil {
			return scaleCell{}, err
		}
		fc, err := flat.NewConfig(kern)
		if err != nil {
			return scaleCell{}, err
		}
		er, err := event.NewRunner(fc, kern, d, event.Options{Options: simOpts})
		if err != nil {
			return scaleCell{}, err
		}
		s, closer = eventStepper{r: er}, er
	default:
		return scaleCell{}, fmt.Errorf("scale: unknown engine %q", engine)
	}
	ns, sps, mps, aps, err := measureStepper(s, pt.warmup, pt.steps)
	if closer != nil {
		closer.Close()
	}
	if err != nil {
		return scaleCell{}, fmt.Errorf("%s/%s/N=%d: %w", engine, g.Name(), g.N(), err)
	}
	cell := scaleCell{
		Topology:      g.Name(),
		N:             g.N(),
		Engine:        engine,
		Daemon:        d.Name(),
		Steps:         pt.steps,
		NsPerStep:     ns,
		StepsPerSec:   sps,
		MovesPerStep:  mps,
		AllocsPerStep: aps,
	}
	if engine == "flat-sharded" {
		cell.SweepWorkers = workers
	}
	return cell, nil
}

// frontierPoints sizes the cleaning-frontier cells: the regime the event
// engine exists for, where the active frontier is a vanishing fraction of N.
type frontierPoint struct {
	n      int
	warmup int
	steps  int
}

var frontierPoints = []frontierPoint{
	{n: 100_000, warmup: 300, steps: 1_000},
	{n: 1_000_000, warmup: 100, steps: 300},
}

// loadFrontier scatters a mid-cleaning-wave configuration of a line into
// fc: processors 0..front carry the feedback tail of a completed wave
// (chain tree, Fok raised), processors past front are already clean. The
// guards admit exactly one move — Cleaning(front) — and each C-action
// hands the frontier to front−1, so every committed step has one enabled
// processor, one move, and (under the synchronous daemon) one round. That
// makes the cell a pure measurement of per-step overhead that scales with
// N: the flat engines pay the Θ(N/64) pending-bitset copy at every round
// boundary, while the event engine's epoch accounting touches only the
// frontier.
func loadFrontier(fc *flat.Config, n, front int) {
	for p := 0; p < n; p++ {
		s := core.State{Pif: core.C, Par: p - 1, L: p}
		if p == 0 {
			s.Par = core.ParNone
		}
		if p <= front {
			s.Pif = core.F
			s.Fok = true
			s.Count = 1
			s.Msg = 1
		}
		fc.SetState(p, s)
	}
}

// measureFrontierCell measures one flat-kernel engine ("flat",
// "flat-sharded", or "event") on the mid-cleaning-wave line of size n.
func measureFrontierCell(fp frontierPoint, engine string, workers int, seed int64) (scaleCell, error) {
	g, err := graph.Line(fp.n)
	if err != nil {
		return scaleCell{}, err
	}
	pr, err := core.New(g, 0)
	if err != nil {
		return scaleCell{}, err
	}
	kern, err := flat.FromCore(pr)
	if err != nil {
		return scaleCell{}, err
	}
	fc, err := flat.NewConfig(kern)
	if err != nil {
		return scaleCell{}, err
	}
	// The frontier retreats one processor per committed step; +8 keeps the
	// run from draining (and the root from re-broadcasting) inside the
	// measured window.
	loadFrontier(fc, fp.n, fp.warmup+fp.steps+8)
	d := sim.Synchronous{}
	simOpts := sim.Options{Seed: seed, MaxSteps: fp.warmup + fp.steps + 1}
	var s stepper
	var closer interface{ Close() }
	switch engine {
	case "flat", "flat-sharded":
		fopts := flat.Options{Options: simOpts}
		if engine == "flat-sharded" {
			fopts.SweepWorkers = workers
			fopts.MinSweep = 1
		}
		fr, err := flat.NewRunner(fc, kern, d, fopts)
		if err != nil {
			return scaleCell{}, err
		}
		s, closer = flatStepper{r: fr}, fr
	case "event":
		er, err := event.NewRunner(fc, kern, d, event.Options{Options: simOpts})
		if err != nil {
			return scaleCell{}, err
		}
		s, closer = eventStepper{r: er}, er
	default:
		return scaleCell{}, fmt.Errorf("scale: unknown frontier engine %q", engine)
	}
	ns, sps, mps, aps, err := measureStepper(s, fp.warmup, fp.steps)
	closer.Close()
	if err != nil {
		return scaleCell{}, fmt.Errorf("%s/line-frontier/N=%d: %w", engine, fp.n, err)
	}
	cell := scaleCell{
		Topology:      "line-frontier",
		N:             fp.n,
		Engine:        engine,
		Daemon:        d.Name(),
		Steps:         fp.steps,
		NsPerStep:     ns,
		StepsPerSec:   sps,
		MovesPerStep:  mps,
		AllocsPerStep: aps,
	}
	if engine == "flat-sharded" {
		cell.SweepWorkers = workers
	}
	return cell, nil
}

// writeScale measures the full scaling grid and writes BENCH_scale.json.
// The sharded sweep runs with GOMAXPROCS workers (minimum 2, so the pool
// machinery is exercised even on a single-core box) at N ≥ 10k, where a
// sweep is large enough to amortize the handoff.
func writeScale(path string, seed int64) error {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	commit, err := exp.VCSCommit()
	if err != nil {
		return err
	}
	rep := scaleReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Commit:     commit,
		Seed:       seed,
	}
	for _, pt := range scalePoints {
		tops, err := scaleTopologies(pt.n, seed)
		if err != nil {
			return err
		}
		for _, g := range tops {
			engines := []string{"flat"}
			if pt.genericOK {
				engines = append([]string{"generic"}, engines...)
			}
			if pt.n >= 10_000 {
				engines = append(engines, "flat-sharded")
			}
			engines = append(engines, "event")
			for _, eng := range engines {
				cell, err := measureScaleCell(g, eng, workers, pt, seed)
				if err != nil {
					return err
				}
				rep.Cells = append(rep.Cells, cell)
				fmt.Fprintf(os.Stderr, "pifexp: scale %s N=%d %s: %.0f ns/step (%.0f steps/sec)\n",
					cell.Topology, cell.N, cell.Engine, cell.NsPerStep, cell.StepsPerSec)
			}
		}
	}
	for _, fp := range frontierPoints {
		for _, eng := range []string{"flat", "flat-sharded", "event"} {
			cell, err := measureFrontierCell(fp, eng, workers, seed)
			if err != nil {
				return err
			}
			rep.Cells = append(rep.Cells, cell)
			fmt.Fprintf(os.Stderr, "pifexp: scale %s N=%d %s: %.0f ns/step (%.0f steps/sec)\n",
				cell.Topology, cell.N, cell.Engine, cell.NsPerStep, cell.StepsPerSec)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
