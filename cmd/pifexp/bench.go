package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"snappif/internal/core"
	"snappif/internal/exp"
	"snappif/internal/graph"
	"snappif/internal/sim"
	"snappif/internal/trace"
)

// benchCell is one measured (topology, daemon) configuration of the
// simulation hot path.
type benchCell struct {
	Topology      string  `json:"topology"`
	N             int     `json:"n"`
	Engine        string  `json:"engine"`
	Daemon        string  `json:"daemon"`
	Steps         int     `json:"steps"`
	NsPerStep     float64 `json:"ns_per_step"`
	StepsPerSec   float64 `json:"steps_per_sec"`
	MovesPerStep  float64 `json:"moves_per_step"`
	AllocsPerStep float64 `json:"allocs_per_step"`
	BytesPerStep  float64 `json:"bytes_per_step"`
}

// benchReport is the BENCH_sim.json schema.
type benchReport struct {
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Commit     string         `json:"commit"`
	Cells      []benchCell    `json:"cells"`
	CellTimes  []trace.Timing `json:"experiment_cell_seconds,omitempty"`
}

// measureSim steps a warm runner for a fixed number of committed steps and
// reports throughput and per-step heap traffic. The warm-up phase absorbs
// the one-time allocations (runner scratch, MovesPerAction map growth);
// after it, the engine's zero-allocation contract makes allocs/step ≈ 0.
func measureSim(g *graph.Graph, d sim.Daemon, steps int) (benchCell, error) {
	const warmup = 2000
	pr, err := core.New(g, 0)
	if err != nil {
		return benchCell{}, err
	}
	cfg := sim.NewConfiguration(g, pr)
	r := sim.NewRunner(cfg, pr, d, sim.Options{Seed: 1, MaxSteps: warmup + steps + 1})
	for i := 0; i < warmup; i++ {
		if done, err := r.Step(); done {
			return benchCell{}, fmt.Errorf("bench: run ended during warm-up: %v", err)
		}
	}
	movesBefore := r.Result().Moves
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	//snapvet:ok benchmark harness timing; the measurement is the output, not engine state
	start := time.Now()
	for i := 0; i < steps; i++ {
		if done, err := r.Step(); done {
			return benchCell{}, fmt.Errorf("bench: run ended during measurement: %v", err)
		}
	}
	//snapvet:ok benchmark harness timing; the measurement is the output, not engine state
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	fs := float64(steps)
	return benchCell{
		Topology:      g.Name(),
		N:             g.N(),
		Engine:        "generic",
		Daemon:        d.Name(),
		Steps:         steps,
		NsPerStep:     float64(elapsed.Nanoseconds()) / fs,
		StepsPerSec:   fs / elapsed.Seconds(),
		MovesPerStep:  float64(r.Result().Moves-movesBefore) / fs,
		AllocsPerStep: float64(m1.Mallocs-m0.Mallocs) / fs,
		BytesPerStep:  float64(m1.TotalAlloc-m0.TotalAlloc) / fs,
	}, nil
}

// writeBench measures the benchmark grid and writes the JSON report.
func writeBench(path string, timings *trace.Timings) error {
	mk := func(g *graph.Graph, err error) *graph.Graph {
		if err != nil {
			panic(fmt.Sprintf("pifexp: bench topology: %v", err))
		}
		return g
	}
	grid := []struct {
		g *graph.Graph
		d sim.Daemon
	}{
		{mk(graph.Ring(64)), sim.Synchronous{}},
		{mk(graph.Ring(64)), sim.DistributedRandom{P: 0.5}},
		{mk(graph.Grid(8, 8)), sim.Synchronous{}},
		{mk(graph.Line(64)), sim.Central{Order: sim.CentralRandom}},
	}
	commit, err := exp.VCSCommit()
	if err != nil {
		return err
	}
	rep := benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Commit:     commit,
	}
	for _, c := range grid {
		cell, err := measureSim(c.g, c.d, 50_000)
		if err != nil {
			return err
		}
		rep.Cells = append(rep.Cells, cell)
	}
	if timings != nil && timings.Len() > 0 {
		rep.CellTimes = timings.Entries()
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
