package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snappif/internal/explore"
	"snappif/internal/graph"
	"snappif/internal/hunt"
)

func TestRunCertifiesLine3(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "explore.json")
	var out bytes.Buffer
	err := run([]string{"run", "-topo", "line:3", "-init", "faults:3",
		"-expect-states", "209", "-json", jsonPath}, &out)
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "certified") {
		t.Fatalf("missing certified verdict:\n%s", out.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var res explore.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.States != 209 || res.Verdict != "certified" || res.InitMode != "faults:3" {
		t.Fatalf("unexpected result artifact: %+v", res)
	}
}

func TestRunExpectStatesGate(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"run", "-topo", "line:3", "-init", "faults:3",
		"-expect-states", "1"}, &out)
	if err == nil || !strings.Contains(err.Error(), "expected exactly 1") {
		t.Fatalf("determinism gate did not trip: %v", err)
	}
}

func TestRunPlantedBugExportsReplayableScenario(t *testing.T) {
	dir := t.TempDir()
	scenPath := filepath.Join(dir, "viol.json")
	var out bytes.Buffer
	err := run([]string{"run", "-topo", "line:3", "-init", "clean",
		"-plant", "level-overflow", "-scenario", scenPath}, &out)
	if !errors.Is(err, errViolation) {
		t.Fatalf("want errViolation, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "VIOLATION") {
		t.Fatalf("no violation reported:\n%s", out.String())
	}
	data, err := os.ReadFile(scenPath)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := hunt.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 || rep.Violations[0].Check != "domains" {
		t.Fatalf("exported scenario did not reproduce the domains violation: %+v", rep.Violations)
	}
}

func TestRunFrontierSeedsArtifact(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"run", "-topo", "line:3", "-init", "clean",
		"-depth", "1", "-seeds", dir}, &out)
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "bounded") {
		t.Fatalf("depth-bounded run not reported bounded:\n%s", out.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no frontier seeds written")
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := hunt.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(nil, nil); err != nil {
		t.Fatalf("frontier seed does not run: %v", err)
	}
}

func TestCertifyQuick(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "explore.json")
	var out bytes.Buffer
	if err := run([]string{"certify", "-quick", "-json", jsonPath}, &out); err != nil {
		t.Fatalf("certify failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all rows match") {
		t.Fatalf("missing success verdict:\n%s", out.String())
	}
	// The planted row must certify as an expected violation, not a failure.
	if !strings.Contains(out.String(), "violation (plant level-overflow)") {
		t.Fatalf("planted row missing:\n%s", out.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var art certArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Safety) != len(certTable(true)) {
		t.Fatalf("artifact has %d safety rows, want %d", len(art.Safety), len(certTable(true)))
	}
	if len(art.Liveness) != len(livenessTable(true)) {
		t.Fatalf("artifact has %d liveness rows, want %d", len(art.Liveness), len(livenessTable(true)))
	}
	for _, r := range art.Liveness {
		if r.Verdict != "certified" || r.WorstRounds > r.Bound {
			t.Fatalf("liveness row off its bound: %+v", r)
		}
	}
}

func TestParseTopo(t *testing.T) {
	for _, tc := range []struct {
		spec string
		n    int
	}{
		{"line:5", 5}, {"ring:6", 6}, {"star:7", 7}, {"complete:4", 4}, {"grid:2x3", 6},
	} {
		g, err := graph.Parse(tc.spec)
		if err != nil {
			t.Fatalf("graph.Parse(%q): %v", tc.spec, err)
		}
		if g.N() != tc.n {
			t.Fatalf("graph.Parse(%q).N() = %d, want %d", tc.spec, g.N(), tc.n)
		}
	}
	for _, bad := range []string{"", "grid", "grid:2", "blob:4", "line:x", "grid:axb"} {
		if _, err := graph.Parse(bad); err == nil {
			t.Fatalf("graph.Parse(%q) accepted", bad)
		}
	}
}

func TestBadUsage(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"nope"}, &out); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"run", "-topo", "bogus"}, &out); err == nil {
		t.Fatal("bogus topology accepted")
	}
	if err := run([]string{"run", "-init", "bogus"}, &out); err == nil {
		t.Fatal("bogus init mode accepted")
	}
	if err := run([]string{"run", "-engine", "bogus"}, &out); err == nil {
		t.Fatal("bogus engine accepted")
	}
	if err := run([]string{"run", "-power", "bogus"}, &out); err == nil {
		t.Fatal("bogus power accepted")
	}
	if err := run([]string{"run", "-plant", "bogus"}, &out); err == nil {
		t.Fatal("bogus plant accepted")
	}
}
