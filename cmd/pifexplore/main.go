// Command pifexplore performs bounded exhaustive schedule exploration of
// the real simulation engines: every daemon schedule from every chosen
// initial configuration, up to symmetry and partial-order reduction, with
// any violation exported as a scenario that pifhunt replays bit for bit.
// See DESIGN.md §10.
//
// Usage:
//
//	pifexplore run     -topo line:3 [-root R] [-engine sim|flat]
//	                   [-power central|distributed|synchronous]
//	                   [-init clean|faults:K|domain] [-depth D] [-workers W]
//	                   [-por=false] [-symmetry=false] [-plant NAME]
//	                   [-max-states N] [-expect-states N] [-json FILE]
//	                   [-scenario FILE] [-seeds DIR]
//	pifexplore certify [-json FILE] [-quick]
//
// `run` explores one instance and exits 1 on any violation (the emitted
// -scenario artifact replays under `pifhunt replay`). -expect-states
// asserts the deterministic state count, which is how CI pins run-to-run
// stability. `certify` runs the standard certification tables — the safety
// rows plus the round-bound liveness rows (Theorem 1's 3·Lmax+3 and
// Theorem 4's 5h+5, certified over every central schedule) — and writes
// both into explore.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"snappif/internal/explore"
	"snappif/internal/graph"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == errViolation:
		os.Exit(1)
	case err != nil:
		fmt.Fprintln(os.Stderr, "pifexplore:", err)
		os.Exit(2)
	}
}

// errViolation distinguishes "exploration worked and found a violation"
// (exit 1) from operational errors (exit 2).
var errViolation = fmt.Errorf("violation found")

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: pifexplore <run|certify> [flags]")
	}
	switch args[0] {
	case "run":
		return runOne(args[1:], out)
	case "certify":
		return runCertify(args[1:], out)
	}
	return fmt.Errorf("unknown subcommand %q (want run or certify)", args[0])
}

func runOne(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pifexplore run", flag.ContinueOnError)
	var (
		topo      = fs.String("topo", "line:3", "topology (line:N, ring:N, star:N, complete:N, grid:RxC)")
		root      = fs.Int("root", 0, "PIF initiator")
		engine    = fs.String("engine", "sim", "engine under test (sim or flat)")
		power     = fs.String("power", "central", "daemon power (central, distributed, synchronous)")
		initMode  = fs.String("init", "faults:3", "initial states (clean, faults:K, domain)")
		depth     = fs.Int("depth", 0, "BFS layer bound (0 = run to closure)")
		workers   = fs.Int("workers", 0, "expansion workers (0 = GOMAXPROCS)")
		por       = fs.Bool("por", true, "sleep-set partial-order reduction (central daemon)")
		symmetry  = fs.Bool("symmetry", true, "canonicalize under admissible automorphisms")
		plant     = fs.String("plant", "", "test-only planted protocol bug")
		maxStates = fs.Int("max-states", 0, "abort beyond this many states (0 = 1e6)")
		expect    = fs.Int("expect-states", -1, "fail unless exactly this many states explored (CI determinism gate)")
		jsonPath  = fs.String("json", "", "write the machine-readable result here")
		scenPath  = fs.String("scenario", "", "write a violating schedule as a pifhunt scenario here")
		seedsDir  = fs.String("seeds", "", "write frontier states as pifhunt seed scenarios into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := graph.Parse(*topo)
	if err != nil {
		return err
	}
	res, e, err := exploreOnce(g, *root, explore.Options{
		Engine:    *engine,
		Power:     *power,
		Depth:     *depth,
		Workers:   *workers,
		POR:       *por,
		Symmetry:  *symmetry,
		Plant:     *plant,
		MaxStates: *maxStates,
	}, *initMode)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, renderRow(res))
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, res); err != nil {
			return err
		}
	}
	if *seedsDir != "" {
		seeds := e.FrontierSeeds("frontier-"+g.Name(), "central-random", 0)
		for _, sc := range seeds {
			if err := writeJSON(filepath.Join(*seedsDir, sc.Name+".json"), sc); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "pifexplore: %d frontier seeds written to %s\n", len(seeds), *seedsDir)
	}
	if res.Verdict == "violation" {
		fmt.Fprintf(out, "pifexplore: VIOLATION %s\n", res.Violation)
		if *scenPath != "" {
			sc, err := e.Scenario("explore-" + g.Name())
			if err != nil {
				return err
			}
			if err := writeJSON(*scenPath, sc); err != nil {
				return err
			}
			fmt.Fprintf(out, "pifexplore: replay with: pifhunt replay -in %s\n", *scenPath)
		}
		return errViolation
	}
	if *expect >= 0 && res.States != *expect {
		return fmt.Errorf("explored %d states, expected exactly %d", res.States, *expect)
	}
	return nil
}

// certRow is one line of the standard certification table.
type certRow struct {
	topo    string
	root    int
	opts    explore.Options
	init    string
	expect  string // expected verdict
	comment string
}

// certTable is the EXPERIMENTS.md certification matrix: the acceptance
// topologies under the central daemon from fault-injected starts, the flat
// engine cross-check, the stronger daemon powers, the full-domain
// certificate on the 3-line (every initial configuration the specification
// quantifies over), and the planted-bug detection row.
func certTable(quick bool) []certRow {
	rows := []certRow{
		{"line:3", 0, explore.Options{POR: true, Symmetry: true}, "faults:3", "certified", "central sim"},
		{"ring:3", 0, explore.Options{POR: true, Symmetry: true}, "faults:3", "certified", "central sim"},
		{"star:4", 0, explore.Options{POR: true, Symmetry: true}, "faults:3", "certified", "central sim"},
		{"star:4", 0, explore.Options{Engine: "flat", POR: true}, "faults:3", "certified", "flat engine cross-check"},
		{"line:3", 0, explore.Options{Power: explore.PowerSynchronous}, "faults:3", "certified", "synchronous"},
		{"ring:3", 0, explore.Options{Power: explore.PowerDistributed}, "faults:2", "certified", "distributed subsets"},
		{"line:3", 0, explore.Options{Plant: "level-overflow", POR: true}, "clean", "violation", "planted bug detected"},
	}
	if !quick {
		rows = append(rows, certRow{
			"line:3", 0, explore.Options{POR: true, Symmetry: true}, "domain", "certified",
			"every initial configuration",
		})
	}
	return rows
}

// liveRow is one line of the liveness certification table.
type liveRow struct {
	topo string
	root int
	opts explore.LivenessOptions
	init string
}

// livenessTable is the round-bound (liveness) certification matrix: the
// Theorem-4 cycle bound from the clean start and the Theorem-1
// normal-configuration bound from corrupted starts, on ≥5-processor
// non-star topologies, plus the flat/event engine cross-checks. Every row
// expects "certified".
func livenessTable(quick bool) []liveRow {
	rows := []liveRow{
		{"line:5", 0, explore.LivenessOptions{Target: explore.TargetCycle}, "clean"},
		{"ring:5", 0, explore.LivenessOptions{Target: explore.TargetCycle}, "clean"},
		{"grid:2x3", 0, explore.LivenessOptions{Target: explore.TargetCycle}, "clean"},
		{"line:5", 0, explore.LivenessOptions{Target: explore.TargetCycle, Engine: "flat"}, "clean"},
		{"line:5", 0, explore.LivenessOptions{Target: explore.TargetCycle, Engine: "event"}, "clean"},
	}
	if !quick {
		rows = append(rows,
			liveRow{"line:5", 0, explore.LivenessOptions{Target: explore.TargetNormal}, "faults:2"},
			liveRow{"ring:5", 0, explore.LivenessOptions{Target: explore.TargetNormal}, "faults:2"},
		)
	}
	return rows
}

// certArtifact is the explore.json layout: the safety rows (reachable-state
// certification) and the liveness rows (round-bound certification).
type certArtifact struct {
	Safety   []*explore.Result         `json:"safety"`
	Liveness []*explore.LivenessResult `json:"liveness"`
}

func runCertify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pifexplore certify", flag.ContinueOnError)
	var (
		jsonPath = fs.String("json", "explore.json", "write the machine-readable results here ('' = skip)")
		quick    = fs.Bool("quick", false, "skip the full-domain and faults-liveness rows (CI smoke)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Fprintln(out, tableHeader())
	var art certArtifact
	bad := 0
	for _, row := range certTable(*quick) {
		g, err := graph.Parse(row.topo)
		if err != nil {
			return err
		}
		res, _, err := exploreOnce(g, row.root, row.opts, row.init)
		if err != nil {
			return err
		}
		art.Safety = append(art.Safety, res)
		line := renderRow(res)
		if res.Verdict != row.expect {
			bad++
			line += fmt.Sprintf("   << want %s", row.expect)
		}
		fmt.Fprintln(out, line)
	}
	fmt.Fprintln(out, "\n"+livenessHeader())
	for _, row := range livenessTable(*quick) {
		g, err := graph.Parse(row.topo)
		if err != nil {
			return err
		}
		inits, err := explore.Inits(row.init, g, row.root, row.opts.CoreOptions)
		if err != nil {
			return err
		}
		res, err := explore.CertifyLiveness(g, row.root, inits, row.opts)
		if err != nil {
			return err
		}
		res.InitMode = row.init
		art.Liveness = append(art.Liveness, res)
		line := renderLivenessRow(res)
		if res.Verdict != "certified" {
			bad++
			line += "   << want certified"
		}
		fmt.Fprintln(out, line)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, art); err != nil {
			return err
		}
		fmt.Fprintf(out, "pifexplore: results written to %s\n", *jsonPath)
	}
	if bad > 0 {
		fmt.Fprintf(out, "pifexplore: %d row(s) off their expected verdict\n", bad)
		return errViolation
	}
	fmt.Fprintln(out, "pifexplore: all rows match their expected verdicts")
	return nil
}

// exploreOnce builds the initial vectors and runs one exploration.
func exploreOnce(g *graph.Graph, root int, opts explore.Options, initMode string) (*explore.Result, *explore.Explorer, error) {
	inits, err := explore.Inits(initMode, g, root, opts.CoreOptions)
	if err != nil {
		return nil, nil, err
	}
	e, err := explore.New(g, root, opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := e.Run(inits)
	if err != nil {
		return nil, nil, err
	}
	res.InitMode = initMode
	return res, e, nil
}

// tableHeader returns the certification table's markdown header.
func tableHeader() string {
	return "| topology | engine | power | init | depth | states | transitions | POR saved | autos | verdict |\n" +
		"|---|---|---|---|---|---|---|---|---|---|"
}

// livenessHeader returns the liveness table's markdown header.
func livenessHeader() string {
	return "| topology | engine | target | init | bound | worst | product states | transitions | verdict |\n" +
		"|---|---|---|---|---|---|---|---|---|"
}

// renderLivenessRow renders one LivenessResult as a markdown table row.
func renderLivenessRow(r *explore.LivenessResult) string {
	return fmt.Sprintf("| %s | %s | %s | %s | %d | %d | %d | %d | %s |",
		r.Topology, r.Engine, r.Target, r.InitMode,
		r.Bound, r.WorstRounds, r.ProductStates, r.Transitions, r.Verdict)
}

// renderRow renders one Result as a markdown table row.
func renderRow(r *explore.Result) string {
	depth := "closure"
	if r.Depth > 0 {
		depth = strconv.Itoa(r.Depth)
	}
	verdict := r.Verdict
	if r.Plant != "" {
		verdict += " (plant " + r.Plant + ")"
	}
	return fmt.Sprintf("| %s | %s | %s | %s | %s | %d | %d | %.1f%% | %d | %s |",
		r.Topology, r.Engine, r.Power, r.InitMode, depth,
		r.States, r.Transitions, r.PORSavingsPct, r.SymmetryAutos, verdict)
}

// writeJSON writes v as indented JSON, creating parent directories.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
