package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snappif/internal/graph"
)

func TestHuntCleanProtocolExitsZero(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"hunt", "-topo", "grid:2x4", "-trials", "2", "-steps", "2000"}, &out)
	if err != nil {
		t.Fatalf("clean hunt failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no invariant violations") {
		t.Fatalf("missing clean verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "worst rounds") {
		t.Fatalf("missing worst-rounds report:\n%s", out.String())
	}
}

func TestHuntPlantedBugFindsShrinksAndReplays(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"hunt", "-topo", "grid:2x4", "-plant", "level-overflow",
		"-trials", "2", "-shrink", "-o", dir}, &out)
	if !errors.Is(err, errFound) {
		t.Fatalf("want errFound, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "FINDING 0") {
		t.Fatalf("no finding reported:\n%s", out.String())
	}
	for _, f := range []string{"scenario.json", "shrunk.json", "trace.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("artifact %s missing: %v", f, err)
		}
	}

	// The written shrunk scenario replays to the same violation.
	var rep bytes.Buffer
	err = run([]string{"replay", "-in", filepath.Join(dir, "shrunk.json")}, &rep)
	if !errors.Is(err, errFound) {
		t.Fatalf("replay of shrunk.json: want errFound, got %v\n%s", err, rep.String())
	}
	if !strings.Contains(rep.String(), "domains") {
		t.Fatalf("replay did not reproduce the domains violation:\n%s", rep.String())
	}

	// Determinism: a second identical hunt produces byte-identical artifacts.
	dir2 := t.TempDir()
	var out2 bytes.Buffer
	err = run([]string{"hunt", "-topo", "grid:2x4", "-plant", "level-overflow",
		"-trials", "2", "-shrink", "-o", dir2}, &out2)
	if !errors.Is(err, errFound) {
		t.Fatalf("second hunt: %v", err)
	}
	for _, f := range []string{"scenario.json", "shrunk.json", "trace.jsonl"} {
		a, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir2, f))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("artifact %s differs across identical hunts", f)
		}
	}
}

func TestShrinkSubcommand(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"hunt", "-topo", "line:4", "-plant", "level-overflow",
		"-fault", "clean", "-trials", "1", "-o", dir}, &out)
	if !errors.Is(err, errFound) {
		t.Fatalf("hunt: %v\n%s", err, out.String())
	}
	var sh bytes.Buffer
	if err := run([]string{"shrink", "-in", filepath.Join(dir, "scenario.json"), "-o", dir}, &sh); err != nil {
		t.Fatalf("shrink: %v\n%s", err, sh.String())
	}
	if !strings.Contains(sh.String(), "shrunk") {
		t.Fatalf("no shrink report:\n%s", sh.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "shrunk.json")); err != nil {
		t.Fatal(err)
	}
}

func TestReplayWithTraceFile(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"hunt", "-topo", "line:4", "-plant", "level-overflow",
		"-fault", "clean", "-trials", "1", "-shrink", "-o", dir}, &out)
	if !errors.Is(err, errFound) {
		t.Fatalf("hunt: %v", err)
	}
	trPath := filepath.Join(dir, "replayed.jsonl")
	var rep bytes.Buffer
	err = run([]string{"replay", "-in", filepath.Join(dir, "shrunk.json"), "-trace", trPath}, &rep)
	if !errors.Is(err, errFound) {
		t.Fatalf("replay: %v", err)
	}
	got, err := os.ReadFile(trPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("replay trace differs from the hunt's trace artifact")
	}
}

func TestParseTopo(t *testing.T) {
	for _, tc := range []struct {
		spec string
		n    int
	}{
		{"line:5", 5}, {"ring:6", 6}, {"star:7", 7}, {"complete:4", 4},
		{"grid:2x4", 8}, {"hypercube:3", 8}, {"btree:7", 7},
	} {
		g, err := graph.Parse(tc.spec)
		if err != nil {
			t.Fatalf("graph.Parse(%q): %v", tc.spec, err)
		}
		if g.N() != tc.n {
			t.Fatalf("graph.Parse(%q).N() = %d, want %d", tc.spec, g.N(), tc.n)
		}
	}
	for _, bad := range []string{"", "grid", "grid:2", "blob:4", "line:x"} {
		if _, err := graph.Parse(bad); err == nil {
			t.Fatalf("graph.Parse(%q) accepted", bad)
		}
	}
}

func TestBadUsage(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"nope"}, &out); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"replay"}, &out); err == nil {
		t.Fatal("replay without -in accepted")
	}
	if err := run([]string{"hunt", "-topo", "bogus"}, &out); err == nil {
		t.Fatal("bogus topology accepted")
	}
	if err := run([]string{"hunt", "-fault", "bogus"}, &out); err == nil {
		t.Fatal("bogus fault accepted")
	}
	if err := run([]string{"hunt", "-plant", "bogus"}, &out); err == nil {
		t.Fatal("bogus plant accepted")
	}
}
