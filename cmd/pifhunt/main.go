// Command pifhunt hunts for counterexamples: it drives the simulation
// engine with random and guided-search adversaries against the invariants
// of the snap-stabilizing PIF protocol, and when it finds a violation it
// minimizes the failing execution into a small, exactly replayable
// scenario artifact. See DESIGN.md §8.
//
// Usage:
//
//	pifhunt hunt   -topo grid:2x4 [-root R] [-fault NAME] [-plant NAME]
//	               [-trials N] [-seed S] [-steps N] [-shrink] [-o DIR]
//	pifhunt replay -in scenario.json [-trace FILE]
//	pifhunt shrink -in scenario.json [-runs N] [-o DIR]
//
// `hunt` exits 1 when it finds any violation (so CI can assert the clean
// protocol hunts clean), printing the worst round consumption it observed.
// `replay` re-executes a scenario artifact deterministically and reports
// its outcome. `shrink` minimizes a failing scenario file. -o writes
// scenario.json / shrunk.json / trace.jsonl artifacts into the directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"snappif/internal/fault"
	"snappif/internal/graph"
	"snappif/internal/hunt"
	"snappif/internal/service"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == errFound:
		os.Exit(1)
	case err != nil:
		fmt.Fprintln(os.Stderr, "pifhunt:", err)
		os.Exit(2)
	}
}

// errFound distinguishes "the hunt worked and found violations" (exit 1)
// from operational errors (exit 2).
var errFound = fmt.Errorf("violations found")

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: pifhunt <hunt|replay|shrink> [flags]")
	}
	switch args[0] {
	case "hunt":
		return runHunt(args[1:], out)
	case "replay":
		return runReplay(args[1:], out)
	case "shrink":
		return runShrink(args[1:], out)
	}
	return fmt.Errorf("unknown subcommand %q (want hunt, replay, or shrink)", args[0])
}

func runHunt(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pifhunt hunt", flag.ContinueOnError)
	var (
		topo   = fs.String("topo", "grid:2x4", "topology (line:N, ring:N, star:N, complete:N, grid:RxC, hypercube:D, btree:N)")
		root   = fs.Int("root", 0, "PIF initiator")
		fname  = fs.String("fault", "uniform-random", "fault injector corrupting the initial configuration (or 'clean')")
		plant  = fs.String("plant", "", "test-only planted protocol bug (see DESIGN.md §8)")
		trials = fs.Int("trials", 16, "random-daemon probes before the guided search")
		seed   = fs.Int64("seed", 1, "base seed")
		steps  = fs.Int("steps", 0, "step budget per probe (0 = 200·N)")
		shrink = fs.Bool("shrink", false, "minimize every finding")
		outDir = fs.String("o", "", "write scenario.json/shrunk.json/trace.jsonl artifacts to this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := graph.Parse(*topo)
	if err != nil {
		return err
	}
	if *fname != "" && *fname != "clean" {
		if _, ok := fault.ByName(*fname); !ok {
			return fmt.Errorf("unknown fault injector %q", *fname)
		}
	}
	if *plant != "" {
		if _, ok := hunt.PlantByName(*plant); !ok {
			return fmt.Errorf("unknown plant %q", *plant)
		}
	}
	base := &hunt.Scenario{
		Name:     "hunt-" + g.Name(),
		Topology: hunt.TopologyOf(g),
		Root:     *root,
		Fault:    *fname,
		Seed:     *seed,
		Plant:    *plant,
	}
	sum, err := hunt.Hunt(base, hunt.Options{
		Trials:   *trials,
		Seed:     *seed,
		MaxSteps: *steps,
		Shrink:   *shrink,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pifhunt: %d probes on %s (fault=%s plant=%s)\n", sum.Runs, g.Name(), orClean(*fname), orNone(*plant))
	fmt.Fprintf(out, "pifhunt: worst rounds %d (daemon %s)\n", sum.WorstRounds, sum.WorstDaemon)
	if len(sum.Findings) == 0 {
		fmt.Fprintln(out, "pifhunt: no invariant violations")
		return nil
	}
	for i, f := range sum.Findings {
		fmt.Fprintf(out, "pifhunt: FINDING %d: daemon=%s seed=%d %s\n", i, f.Daemon, f.Seed, f.Violation.String())
		if f.Stats != nil {
			fmt.Fprintf(out, "pifhunt:   shrunk %d→%d steps, %d→%d processors in %d runs\n",
				f.Stats.FromSteps, f.Stats.ToSteps, f.Stats.FromN, f.Stats.ToN, f.Stats.Runs)
		}
	}
	if *outDir != "" {
		if err := writeFinding(*outDir, sum.Findings[0]); err != nil {
			return err
		}
		fmt.Fprintf(out, "pifhunt: artifacts written to %s\n", *outDir)
	}
	return errFound
}

func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pifhunt replay", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "scenario JSON file (required)")
		trFile  = fs.String("trace", "", "also write the full obs trace to this file")
		verbose = fs.Bool("v", false, "print the executed schedule")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := loadScenario(*in)
	if err != nil {
		return err
	}
	if sc.Service != nil {
		return replayService(sc, *trFile, out)
	}
	var rep *hunt.Report
	if *trFile != "" {
		f, err := os.Create(*trFile)
		if err != nil {
			return err
		}
		rep, err = sc.Trace(f, nil)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	} else {
		rep, err = sc.Run(nil, nil)
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "pifhunt: replayed %d steps, %d moves, %d rounds on %s\n",
		rep.Result.Steps, rep.Result.Moves, rep.Result.Rounds, sc.Topology.Name)
	if *verbose {
		for i, step := range rep.Executed {
			fmt.Fprintf(out, "pifhunt:   step %d: %v\n", i+1, step)
		}
	}
	if len(rep.Violations) == 0 {
		fmt.Fprintln(out, "pifhunt: no invariant violations")
		return nil
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(out, "pifhunt: VIOLATION %s\n", v.String())
	}
	return errFound
}

// replayService re-runs a serving scenario (hunt.Scenario with a Service
// spec) deterministically. trFile, when set, receives the run's canonical
// byte report — the serving analog of an obs trace: two replays of the same
// scenario bytes write identical files.
func replayService(sc *hunt.Scenario, trFile string, out io.Writer) error {
	rep, err := service.ReplayScenario(sc)
	if err != nil {
		return err
	}
	if trFile != "" {
		if err := os.WriteFile(trFile, rep.Canonical(), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "pifhunt: replayed serving run on %s (%s): %d waves in %d ticks, residue=%d aborts=%d, latency p50=%d p99=%d ticks\n",
		sc.Topology.Name, rep.Engine, len(rep.Waves), rep.Ticks, rep.Residue, rep.Aborts,
		rep.QuantileTicks(0.50), rep.QuantileTicks(0.99))
	return nil
}

func runShrink(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pifhunt shrink", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "failing scenario JSON file (required)")
		runs   = fs.Int("runs", 0, "candidate-execution budget (0 = 4000)")
		outDir = fs.String("o", "", "write shrunk.json and trace.jsonl to this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := loadScenario(*in)
	if err != nil {
		return err
	}
	shrunk, stats, err := hunt.Shrink(sc, hunt.ShrinkOptions{MaxRuns: *runs})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pifhunt: shrunk %d→%d steps, %d→%d processors in %d runs (check %s)\n",
		stats.FromSteps, stats.ToSteps, stats.FromN, stats.ToN, stats.Runs, stats.Check)
	if *outDir != "" {
		if err := writeScenario(filepath.Join(*outDir, "shrunk.json"), shrunk); err != nil {
			return err
		}
		if err := writeTrace(filepath.Join(*outDir, "trace.jsonl"), shrunk); err != nil {
			return err
		}
		fmt.Fprintf(out, "pifhunt: artifacts written to %s\n", *outDir)
	}
	return nil
}

func loadScenario(path string) (*hunt.Scenario, error) {
	if path == "" {
		return nil, fmt.Errorf("-in is required")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return hunt.Unmarshal(data)
}

// writeFinding writes the normalized scenario, the minimized scenario (when
// shrinking ran), and the obs trace of the smallest artifact available.
func writeFinding(dir string, f hunt.Finding) error {
	if err := writeScenario(filepath.Join(dir, "scenario.json"), f.Scenario); err != nil {
		return err
	}
	traced := f.Scenario
	if f.Shrunk != nil {
		if err := writeScenario(filepath.Join(dir, "shrunk.json"), f.Shrunk); err != nil {
			return err
		}
		traced = f.Shrunk
	}
	return writeTrace(filepath.Join(dir, "trace.jsonl"), traced)
}

func writeScenario(path string, sc *hunt.Scenario) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := sc.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeTrace replays sc with full tracing into path. The close error is the
// write error on many filesystems; losing it would report a truncated trace
// as success.
func writeTrace(path string, sc *hunt.Scenario) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, terr := sc.Trace(f, nil)
	cerr := f.Close()
	if terr != nil {
		return terr
	}
	return cerr
}

func orClean(s string) string {
	if s == "" {
		return "clean"
	}
	return s
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
