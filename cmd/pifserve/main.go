// Command pifserve runs the PIF-as-a-service layer: open-loop request
// streams served by pipelined waves over per-initiator lanes.
//
// Usage:
//
//	pifserve run      -topo ring:64 -engine flat -rate 20 -requests 200 [-serial] [-json]
//	pifserve capacity -topo ring:64 -engine flat -slo-p99 2000 [-lo 1] [-hi 500]
//	pifserve dump     -topo ring:64 -engine event -rate 10 -requests 50 -out scenario.json
//	pifserve bench    -out BENCH_service.json [-quick]
//
// `run` serves one workload and reports throughput and latency percentiles.
// `capacity` binary-searches the highest arrival rate whose exact p99 wave
// latency stays under the SLO. `dump` writes the run as a replayable
// pifhunt scenario (replay with `pifhunt replay -in scenario.json`).
// `bench` emits the BENCH_service.json load grid.
//
// Everything runs on virtual time: the same flags produce byte-identical
// reports on every host and worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"snappif/internal/event"
	"snappif/internal/graph"
	"snappif/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pifserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: pifserve <run|capacity|dump|bench> [flags]")
	}
	switch args[0] {
	case "run":
		return runServe(args[1:], out, false)
	case "dump":
		return runServe(args[1:], out, true)
	case "capacity":
		return runCapacity(args[1:], out)
	case "bench":
		return runBench(args[1:], out)
	}
	return fmt.Errorf("unknown subcommand %q (want run, capacity, dump, or bench)", args[0])
}

// serveFlags is the flag set shared by run/dump/capacity.
type serveFlags struct {
	fs         *flag.FlagSet
	topo       *string
	engine     *string
	latency    *string
	initiators *string
	faults     *string
	rate       *float64
	process    *string
	requests   *int
	mix        *string
	seed       *int64
	maxTicks   *int64
	sweepW     *int
}

func newServeFlags(name string) *serveFlags {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	return &serveFlags{
		fs:         fs,
		topo:       fs.String("topo", "ring:32", "topology spec (line/ring/star/complete/hypercube/btree:N or grid:RxC)"),
		engine:     fs.String("engine", "flat", "execution engine: sim, flat, or event"),
		latency:    fs.String("latency", "", "event engine link-latency distribution (const:K, uniform:LO-HI, pareto:a=A,cap=C)"),
		initiators: fs.String("initiators", "0", "comma-separated lane roots (pipeline depth = lane count)"),
		faults:     fs.String("faults", "", "comma-separated per-lane fault injectors for the start states"),
		rate:       fs.Float64("rate", 10, "offered load: requests per 1000 virtual ticks"),
		process:    fs.String("process", "poisson", "arrival process: poisson or constant"),
		requests:   fs.Int("requests", 100, "stream length"),
		mix:        fs.String("mix", "", "request-kind mix as kind=weight,... (default uniform over "+strings.Join(service.Kinds(), ",")+")"),
		seed:       fs.Int64("seed", 1, "workload and lane seed"),
		maxTicks:   fs.Int64("max-ticks", 0, "virtual-clock bound (0 = default)"),
		sweepW:     fs.Int("parallel-sweep", 0, "flat engine guard-sweep workers (bit-identical at any count)"),
	}
}

// build resolves the flags into service options and a generated workload.
func (sf *serveFlags) build() (service.Options, []service.Arrival, error) {
	g, err := graph.Parse(*sf.topo)
	if err != nil {
		return service.Options{}, nil, err
	}
	initiators, err := parseIntList(*sf.initiators)
	if err != nil {
		return service.Options{}, nil, fmt.Errorf("-initiators: %w", err)
	}
	var lat event.Latency
	if *sf.latency != "" {
		if lat, err = event.ParseLatency(*sf.latency); err != nil {
			return service.Options{}, nil, err
		}
	}
	var faults []string
	if *sf.faults != "" {
		faults = strings.Split(*sf.faults, ",")
	}
	mix, err := parseMix(*sf.mix)
	if err != nil {
		return service.Options{}, nil, err
	}
	opts := service.Options{
		Graph:        g,
		Engine:       *sf.engine,
		Latency:      lat,
		Initiators:   initiators,
		Faults:       faults,
		Seed:         *sf.seed,
		MaxTicks:     *sf.maxTicks,
		SweepWorkers: *sf.sweepW,
	}
	w := service.Workload{
		Process:  *sf.process,
		Rate:     *sf.rate,
		Requests: *sf.requests,
		Lanes:    len(initiators),
		Mix:      mix,
		Seed:     *sf.seed,
	}
	arrivals, err := w.Generate()
	if err != nil {
		return service.Options{}, nil, err
	}
	return opts, arrivals, nil
}

func runServe(args []string, out io.Writer, dump bool) error {
	sf := newServeFlags("pifserve run")
	serial := sf.fs.Bool("serial", false, "serve closed-loop (one wave in flight globally) instead of pipelined")
	jsonOut := sf.fs.Bool("json", false, "emit the report summary as JSON")
	outFile := sf.fs.String("out", "", "dump: scenario output file (required for dump)")
	name := sf.fs.String("name", "pifserve-run", "dump: scenario name")
	if err := sf.fs.Parse(args); err != nil {
		return err
	}
	opts, arrivals, err := sf.build()
	if err != nil {
		return err
	}

	if dump {
		if *outFile == "" {
			return fmt.Errorf("dump: -out is required")
		}
		sc, err := service.DumpScenario(*name, opts, arrivals, *serial)
		if err != nil {
			return err
		}
		data, err := sc.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outFile, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "pifserve: wrote scenario %s (%d arrivals on %s); replay with: pifhunt replay -in %s\n",
			*outFile, len(arrivals), *sf.topo, *outFile)
		return nil
	}

	srv, err := service.New(opts)
	if err != nil {
		return err
	}
	var rep *service.Report
	if *serial {
		rep, err = srv.RunSerial(arrivals)
	} else {
		rep, err = srv.Run(arrivals)
	}
	if err != nil {
		return err
	}
	if *jsonOut {
		data, err := rep.MarshalJSONSummary()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return nil
	}
	mode := "pipelined"
	if *serial {
		mode = "serial"
	}
	fmt.Fprintf(out, "pifserve: %s %s on %s: %d waves in %d ticks (%.3f waves/ktick), residue=%d aborts=%d\n",
		mode, rep.Engine, *sf.topo, len(rep.Waves), rep.Ticks, rep.WavesPerKTick(), rep.Residue, rep.Aborts)
	fmt.Fprintf(out, "pifserve: latency ticks p50=%d p90=%d p99=%d\n",
		rep.QuantileTicks(0.50), rep.QuantileTicks(0.90), rep.QuantileTicks(0.99))
	return nil
}

func runCapacity(args []string, out io.Writer) error {
	sf := newServeFlags("pifserve capacity")
	sloP99 := sf.fs.Int64("slo-p99", 0, "SLO: max acceptable p99 wave latency in virtual ticks (required)")
	lo := sf.fs.Float64("lo", 1, "search bracket: lowest rate probed")
	hi := sf.fs.Float64("hi", 1000, "search bracket: highest rate probed")
	iters := sf.fs.Int("iters", 12, "binary-search probes")
	jsonOut := sf.fs.Bool("json", false, "emit the capacity result as JSON")
	if err := sf.fs.Parse(args); err != nil {
		return err
	}
	opts, _, err := sf.build()
	if err != nil {
		return err
	}
	w := service.Workload{
		Process:  *sf.process,
		Rate:     *sf.rate, // overridden per probe
		Requests: *sf.requests,
		Lanes:    len(opts.Initiators),
		Seed:     *sf.seed,
	}
	if mix, merr := parseMix(*sf.mix); merr == nil {
		w.Mix = mix
	} else {
		return merr
	}
	res, err := service.PlanCapacity(opts, w, service.SLO{P99Ticks: *sloP99}, *lo, *hi, *iters)
	if err != nil {
		return err
	}
	if *jsonOut {
		return writeJSON(out, res)
	}
	if res.Sustainable == 0 {
		fmt.Fprintf(out, "pifserve: %s on %s cannot sustain even %.3g req/ktick at p99 ≤ %d ticks\n",
			*sf.engine, *sf.topo, *lo, *sloP99)
		return nil
	}
	fmt.Fprintf(out, "pifserve: %s on %s sustains %.3f req/ktick at p99 ≤ %d ticks (measured p99=%d, %.3f waves/ktick, %d probes)\n",
		*sf.engine, *sf.topo, res.Sustainable, *sloP99, res.P99Ticks, res.WavesPerKTick, len(res.Probes))
	for _, p := range res.Probes {
		verdict := "MISS"
		if p.OK {
			verdict = "ok"
		}
		fmt.Fprintf(out, "pifserve:   probe rate=%.3f p99=%d waves/ktick=%.3f %s\n",
			p.Rate, p.P99Ticks, p.WavesPerKTick, verdict)
	}
	return nil
}

// parseIntList parses "0,5,11".
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseMix parses "snapshot=3,barrier=1" ("" = nil, meaning uniform).
func parseMix(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	mix := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("-mix: bad entry %q (want kind=weight)", part)
		}
		wt, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("-mix: bad weight in %q", part)
		}
		mix[strings.TrimSpace(kv[0])] = wt
	}
	return mix, nil
}
