package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("pifserve %s: %v\n%s", strings.Join(args, " "), err, buf.String())
	}
	return buf.String()
}

func TestRunSubcommand(t *testing.T) {
	out := runCLI(t, "run", "-topo", "ring:16", "-engine", "flat",
		"-initiators", "0,8", "-rate", "10", "-requests", "20", "-seed", "3")
	if !strings.Contains(out, "20 waves") {
		t.Fatalf("expected 20 delivered waves:\n%s", out)
	}
	// Same flags twice → byte-identical output (virtual time only).
	if out2 := runCLI(t, "run", "-topo", "ring:16", "-engine", "flat",
		"-initiators", "0,8", "-rate", "10", "-requests", "20", "-seed", "3"); out2 != out {
		t.Fatalf("non-deterministic CLI output:\n%s\nvs\n%s", out, out2)
	}
}

func TestRunJSONAndMix(t *testing.T) {
	out := runCLI(t, "run", "-topo", "line:8", "-engine", "event", "-latency", "const:2",
		"-rate", "5", "-requests", "10", "-mix", "snapshot=3,barrier=1", "-json")
	var s struct {
		Engine string  `json:"engine"`
		Waves  int     `json:"waves"`
		P99    int64   `json:"p99_ticks"`
		WPK    float64 `json:"waves_per_ktick"`
	}
	if err := json.Unmarshal([]byte(out), &s); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if s.Engine != "event" || s.Waves != 10 || s.P99 <= 0 || s.WPK <= 0 {
		t.Fatalf("summary %+v", s)
	}
}

func TestSerialFlag(t *testing.T) {
	out := runCLI(t, "run", "-topo", "ring:12", "-initiators", "0,6",
		"-rate", "50", "-requests", "12", "-serial")
	if !strings.Contains(out, "serial") {
		t.Fatalf("serial mode not reported:\n%s", out)
	}
}

func TestCapacitySubcommand(t *testing.T) {
	out := runCLI(t, "capacity", "-topo", "ring:16", "-engine", "flat",
		"-requests", "30", "-slo-p99", "500", "-lo", "0.5", "-hi", "100", "-iters", "6")
	if !strings.Contains(out, "sustains") {
		t.Fatalf("no capacity verdict:\n%s", out)
	}
}

func TestDumpReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	runCLI(t, "dump", "-topo", "ring:12", "-engine", "flat", "-initiators", "0,6",
		"-rate", "20", "-requests", "15", "-out", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"service"`) || !strings.Contains(string(data), `"arrivals"`) {
		t.Fatalf("scenario missing service spec:\n%s", data)
	}
}

func TestBadInput(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{},
		{"warp"},
		{"run", "-topo", "moebius:9"},
		{"run", "-topo", "ring:8", "-initiators", "0,x"},
		{"run", "-topo", "ring:8", "-mix", "snapshot"},
		{"run", "-topo", "ring:8", "-mix", "snapshot=x"},
		{"capacity", "-topo", "ring:8"}, // missing -slo-p99
		{"dump", "-topo", "ring:8"},     // missing -out
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("pifserve %v accepted", args)
		}
	}
}

// TestServiceBenchSmoke is the CI_SERVICE=1 gate: the quick bench grid must
// emit the pinned small cell — every offered request delivered on the
// flat/ring:64 cell — and be byte-identical across two runs (modulo nothing:
// the commit stamp is resolved once per process environment, not per run).
func TestServiceBenchSmoke(t *testing.T) {
	if os.Getenv("CI_SERVICE") != "1" {
		t.Skip("set CI_SERVICE=1 to run the bench smoke gate")
	}
	dir := t.TempDir()
	p1 := filepath.Join(dir, "b1.json")
	p2 := filepath.Join(dir, "b2.json")
	runCLI(t, "bench", "-quick", "-out", p1)
	runCLI(t, "bench", "-quick", "-out", p2)
	d1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("bench grid not byte-identical across runs")
	}
	var rep struct {
		Commit    string `json:"commit"`
		LoadCells []struct {
			Engine   string `json:"engine"`
			Topology string `json:"topology"`
			Requests int    `json:"requests"`
			Waves    int    `json:"waves"`
			P50      int64  `json:"p50_ticks"`
		} `json:"load_cells"`
	}
	if err := json.Unmarshal(d1, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Commit == "" || rep.Commit == "unknown" {
		t.Fatalf("bench commit stamp %q", rep.Commit)
	}
	pinned := false
	for _, c := range rep.LoadCells {
		if c.Engine == "flat" && c.Topology == "ring:64" {
			pinned = true
			if c.Waves != c.Requests {
				t.Fatalf("pinned cell dropped waves: %d/%d", c.Waves, c.Requests)
			}
			if c.P50 <= 0 {
				t.Fatalf("pinned cell p50 = %d", c.P50)
			}
		}
	}
	if !pinned {
		t.Fatal("quick grid no longer contains the pinned flat/ring:64 cell")
	}
}
