package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"snappif/internal/exp"
	"snappif/internal/graph"
	"snappif/internal/service"
)

// loadCell is one (engine, topology, offered rate) point of the open-loop
// load grid: offered load versus achieved throughput and latency
// percentiles. All numbers are virtual-time, so cells are byte-identical
// across hosts and runs.
type loadCell struct {
	Engine        string  `json:"engine"`
	Topology      string  `json:"topology"`
	N             int     `json:"n"`
	Lanes         int     `json:"lanes"`
	Process       string  `json:"process"`
	OfferedRate   float64 `json:"offered_rate"`
	Requests      int     `json:"requests"`
	Waves         int     `json:"waves"`
	Ticks         int64   `json:"ticks"`
	WavesPerKTick float64 `json:"achieved_waves_per_ktick"`
	P50Ticks      int64   `json:"p50_ticks"`
	P90Ticks      int64   `json:"p90_ticks"`
	P99Ticks      int64   `json:"p99_ticks"`
}

// pipelineCell is one pipelined-vs-serial comparison at a given depth; the
// emitter enforces the ≥ 1.5× speedup gate on every cell with depth ≥ 2.
type pipelineCell struct {
	Engine       string  `json:"engine"`
	Topology     string  `json:"topology"`
	N            int     `json:"n"`
	Depth        int     `json:"depth"`
	WavesEach    int     `json:"waves_each"`
	SerialWPK    float64 `json:"serial_waves_per_ktick"`
	PipelinedWPK float64 `json:"pipelined_waves_per_ktick"`
	Speedup      float64 `json:"speedup"`
}

// benchReport is the BENCH_service.json schema.
type benchReport struct {
	GoVersion     string         `json:"go_version"`
	Commit        string         `json:"commit"`
	Seed          int64          `json:"seed"`
	LoadCells     []loadCell     `json:"load_cells"`
	PipelineCells []pipelineCell `json:"pipeline_cells"`
}

// benchTopo describes one topology of the load grid with rates chosen to
// straddle its serving capacity (so the grid shows both the linear region
// and saturation).
type benchTopo struct {
	spec  string
	rates []float64
}

func runBench(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pifserve bench", flag.ContinueOnError)
	outFile := fs.String("out", "BENCH_service.json", "output file")
	quick := fs.Bool("quick", false, "small grid for CI smoke (flat engine, small topologies)")
	seed := fs.Int64("seed", 1, "workload and lane seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	commit, err := exp.VCSCommit()
	if err != nil {
		return err
	}
	rep := benchReport{GoVersion: runtime.Version(), Commit: commit, Seed: *seed}

	engines := []string{"sim", "flat", "event"}
	topos := []benchTopo{
		{"ring:256", []float64{1, 2, 4, 8}},
		{"grid:16x16", []float64{5, 10, 20, 40}},
	}
	pipeTopos := []struct {
		spec   string
		depths []int
	}{
		{"ring:1000", []int{2, 4}},
		{"grid:32x32", []int{2, 4}},
	}
	requests := 120
	wavesEach := 4
	if *quick {
		engines = []string{"flat"}
		topos = []benchTopo{
			{"ring:64", []float64{2, 8}},
			{"grid:8x8", []float64{5, 20}},
		}
		pipeTopos = pipeTopos[:0]
		requests = 30
	}

	for _, tp := range topos {
		g, err := graph.Parse(tp.spec)
		if err != nil {
			return err
		}
		initiators := []int{0, g.N() / 2}
		for _, eng := range engines {
			for _, rate := range tp.rates {
				w := service.Workload{
					Process: "poisson", Rate: rate, Requests: requests,
					Lanes: len(initiators), Seed: *seed,
				}
				arrivals, err := w.Generate()
				if err != nil {
					return err
				}
				srv, err := service.New(service.Options{
					Graph: g, Engine: eng, Initiators: initiators,
					Seed: *seed, MaxTicks: 1 << 24,
				})
				if err != nil {
					return err
				}
				r, err := srv.Run(arrivals)
				if err != nil {
					return fmt.Errorf("bench %s/%s/rate=%g: %w", eng, tp.spec, rate, err)
				}
				rep.LoadCells = append(rep.LoadCells, loadCell{
					Engine:        eng,
					Topology:      tp.spec,
					N:             g.N(),
					Lanes:         len(initiators),
					Process:       "poisson",
					OfferedRate:   rate,
					Requests:      requests,
					Waves:         len(r.Waves),
					Ticks:         r.Ticks,
					WavesPerKTick: r.WavesPerKTick(),
					P50Ticks:      r.QuantileTicks(0.50),
					P90Ticks:      r.QuantileTicks(0.90),
					P99Ticks:      r.QuantileTicks(0.99),
				})
				fmt.Fprintf(out, "pifserve: bench %s %s rate=%g: %.3f waves/ktick p99=%d\n",
					eng, tp.spec, rate, r.WavesPerKTick(), r.QuantileTicks(0.99))
			}
		}
	}

	for _, pt := range pipeTopos {
		g, err := graph.Parse(pt.spec)
		if err != nil {
			return err
		}
		for _, depth := range pt.depths {
			initiators := make([]int, depth)
			for i := range initiators {
				initiators[i] = i * g.N() / depth
			}
			var arrivals []service.Arrival
			kinds := service.Kinds()
			for j := 0; j < wavesEach; j++ {
				for l := range initiators {
					arrivals = append(arrivals, service.Arrival{
						T: int64(1 + j), Lane: l, Kind: kinds[(j+l)%len(kinds)],
					})
				}
			}
			service.SortArrivals(arrivals)
			mkRun := func(serial bool) (*service.Report, error) {
				srv, err := service.New(service.Options{
					Graph: g, Engine: "flat", Initiators: initiators,
					Seed: *seed, MaxTicks: 1 << 25,
				})
				if err != nil {
					return nil, err
				}
				if serial {
					return srv.RunSerial(arrivals)
				}
				return srv.Run(arrivals)
			}
			serial, err := mkRun(true)
			if err != nil {
				return err
			}
			pipe, err := mkRun(false)
			if err != nil {
				return err
			}
			sp := pipe.WavesPerKTick() / serial.WavesPerKTick()
			if depth >= 2 && sp < 1.5 {
				return fmt.Errorf("bench: pipelining gate failed on %s depth %d: %.2fx < 1.5x", pt.spec, depth, sp)
			}
			rep.PipelineCells = append(rep.PipelineCells, pipelineCell{
				Engine:       "flat",
				Topology:     pt.spec,
				N:            g.N(),
				Depth:        depth,
				WavesEach:    wavesEach,
				SerialWPK:    serial.WavesPerKTick(),
				PipelinedWPK: pipe.WavesPerKTick(),
				Speedup:      sp,
			})
			fmt.Fprintf(out, "pifserve: bench pipeline %s depth=%d: %.2fx\n", pt.spec, depth, sp)
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outFile, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "pifserve: wrote %s (%d load cells, %d pipeline cells)\n",
		*outFile, len(rep.LoadCells), len(rep.PipelineCells))
	return nil
}

// writeJSON indents v onto out.
func writeJSON(out io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, string(data))
	return err
}
