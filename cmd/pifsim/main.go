// Command pifsim runs a single PIF simulation and narrates it: topology,
// daemon, optional corruption, number of waves, and per-wave measurements,
// with an optional step-by-step action trace.
//
// Usage:
//
//	pifsim -topo ring -n 16 -waves 3 -daemon sync -corrupt uniform -trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"snappif"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pifsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("pifsim", flag.ContinueOnError)
	var (
		topoName = fs.String("topo", "ring", "topology: line|ring|star|complete|grid|torus|hypercube|bintree|caterpillar|lollipop|random")
		n        = fs.Int("n", 16, "network size (nodes; grids use the nearest square)")
		root     = fs.Int("root", 0, "root processor")
		waves    = fs.Int("waves", 3, "number of PIF waves to run")
		daemonN  = fs.String("daemon", "dist", "daemon: sync|central|dist|local|adversarial|progress")
		corrupt  = fs.String("corrupt", "", "initial corruption: uniform|partial|phantom|fok|counts|stale|levels|region")
		seed     = fs.Int64("seed", 1, "random seed")
		states   = fs.Bool("states", false, "dump final processor states")
		watch    = fs.Bool("watch", false, "print a phase strip at every round")
		every    = fs.Int("every", 1, "with -watch, print every k-th round")
		jsonOut  = fs.String("json", "", "write the full action trace as JSON to this file")
		events   = fs.String("events", "", "write the structured JSONL event trace to this file (analyze it with piftrace)")
		forest   = fs.Bool("forest", false, "draw the final tree forest")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	topo, err := buildTopo(*topoName, *n, *seed)
	if err != nil {
		return err
	}
	daemon, err := pickDaemon(*daemonN)
	if err != nil {
		return err
	}
	netOpts := []snappif.NetworkOption{
		snappif.WithSeed(*seed),
		snappif.WithDaemon(daemon),
		snappif.WithInvariantChecking(),
	}
	if *watch {
		netOpts = append(netOpts, snappif.WithRoundTrace(out, *every))
	}
	if *jsonOut != "" {
		netOpts = append(netOpts, snappif.WithEventRecording(0))
	}
	var eventsF *os.File
	if *events != "" {
		eventsF, err = os.Create(*events)
		if err != nil {
			return err
		}
		// net.Close flushes the trace; the file close error still carries
		// late write failures (full disk) and must reach the exit code.
		defer func() {
			if cerr := eventsF.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("events: %w", cerr)
			}
		}()
		netOpts = append(netOpts, snappif.WithEventTrace(eventsF))
	}
	net, err := snappif.NewNetwork(topo, *root, netOpts...)
	if err != nil {
		return err
	}
	defer net.Close()
	fmt.Fprintf(out, "network %s, root %d, daemon %s\n", topo, *root, daemon.Name())

	if *corrupt != "" {
		kind, err := pickCorruption(*corrupt)
		if err != nil {
			return err
		}
		if err := net.Corrupt(kind); err != nil {
			return err
		}
		fmt.Fprintf(out, "injected corruption: %s\n", *corrupt)
	}

	for i := 0; i < *waves; i++ {
		res, err := net.Broadcast()
		if err != nil {
			return fmt.Errorf("wave %d: %w", i+1, err)
		}
		status := "ok"
		if !res.OK() {
			status = fmt.Sprintf("VIOLATED: %v", res.Violations)
		}
		fmt.Fprintf(out, "wave %d: m=%d delivered=%d/%d acked=%d/%d rounds=%d (bound 5h+5=%d, h=%d) steps=%d — %s\n",
			i+1, res.Message, res.Delivered, topo.N()-1, res.Acknowledged, topo.N()-1,
			res.Rounds, 5*res.Height+5, res.Height, res.Steps, status)
	}

	if *states {
		fmt.Fprintln(out, "\nfinal states:")
		for _, s := range net.States() {
			fmt.Fprintf(out, "  p%-3d phase=%s parent=%-3d level=%-3d count=%-3d fok=%-5v payload=%d\n",
				s.ID, s.Phase, s.Parent, s.Level, s.Count, s.Fok, s.Payload)
		}
	}
	if *forest {
		fmt.Fprintln(out, "\nfinal forest:")
		net.WriteTree(out)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := net.TraceJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("json: %w", err)
		}
		fmt.Fprintf(out, "action trace written to %s\n", *jsonOut)
	}
	if *events != "" {
		if err := net.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "event trace written to %s\n", *events)
	}
	return nil
}

func buildTopo(name string, n int, seed int64) (snappif.Topology, error) {
	side := 1
	for side*side < n {
		side++
	}
	dim := 1
	for 1<<dim < n {
		dim++
	}
	switch strings.ToLower(name) {
	case "line":
		return snappif.Line(n)
	case "ring":
		return snappif.Ring(n)
	case "star":
		return snappif.Star(n)
	case "complete":
		return snappif.Complete(n)
	case "grid":
		return snappif.Grid(side, side)
	case "torus":
		return snappif.Torus(side, side)
	case "hypercube":
		return snappif.Hypercube(dim)
	case "bintree":
		return snappif.BinaryTree(n)
	case "caterpillar":
		return snappif.Caterpillar((n+2)/3, 2)
	case "lollipop":
		return snappif.Lollipop((n+1)/2, n/2)
	case "random":
		return snappif.Random(n, 0.2, seed)
	default:
		return snappif.Topology{}, fmt.Errorf("unknown topology %q", name)
	}
}

func pickDaemon(name string) (snappif.Daemon, error) {
	switch strings.ToLower(name) {
	case "sync":
		return snappif.SynchronousDaemon(), nil
	case "central":
		return snappif.CentralDaemon(), nil
	case "dist":
		return snappif.DistributedDaemon(0.5), nil
	case "local":
		return snappif.LocallyCentralDaemon(), nil
	case "adversarial":
		return snappif.AdversarialDaemon(), nil
	case "progress":
		return snappif.ProgressFirstDaemon(), nil
	default:
		return snappif.Daemon{}, fmt.Errorf("unknown daemon %q", name)
	}
}

func pickCorruption(name string) (snappif.Corruption, error) {
	switch strings.ToLower(name) {
	case "uniform":
		return snappif.CorruptUniform, nil
	case "partial":
		return snappif.CorruptPartial, nil
	case "phantom":
		return snappif.CorruptPhantomTree, nil
	case "fok":
		return snappif.CorruptPrematureFok, nil
	case "counts":
		return snappif.CorruptInflatedCounts, nil
	case "stale":
		return snappif.CorruptStaleFeedback, nil
	case "levels":
		return snappif.CorruptMaxLevels, nil
	case "region":
		return snappif.CorruptStaleRegion, nil
	default:
		return 0, fmt.Errorf("unknown corruption %q", name)
	}
}
