package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-topo", "ring", "-n", "8", "-waves", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"network ring-8", "wave 1:", "wave 2:", "delivered=7/7", "— ok"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunEveryTopologyAndDaemon(t *testing.T) {
	for _, topo := range []string{"line", "ring", "star", "complete", "grid", "torus",
		"hypercube", "bintree", "caterpillar", "lollipop", "random"} {
		var out strings.Builder
		if err := run([]string{"-topo", topo, "-n", "9", "-waves", "1"}, &out); err != nil {
			t.Fatalf("topology %s: %v", topo, err)
		}
	}
	for _, d := range []string{"sync", "central", "dist", "local", "adversarial", "progress"} {
		var out strings.Builder
		if err := run([]string{"-daemon", d, "-n", "6", "-waves", "1"}, &out); err != nil {
			t.Fatalf("daemon %s: %v", d, err)
		}
	}
}

func TestRunWithCorruptionAndStates(t *testing.T) {
	for _, c := range []string{"uniform", "partial", "phantom", "fok", "counts", "stale", "levels", "region"} {
		var out strings.Builder
		if err := run([]string{"-topo", "grid", "-n", "9", "-waves", "1", "-corrupt", c, "-states"}, &out); err != nil {
			t.Fatalf("corruption %s: %v", c, err)
		}
		if !strings.Contains(out.String(), "final states:") {
			t.Fatalf("states dump missing for %s", c)
		}
		if strings.Contains(out.String(), "VIOLATED") {
			t.Fatalf("corruption %s violated the spec:\n%s", c, out.String())
		}
	}
}

func TestRunWatch(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-topo", "line", "-n", "6", "-waves", "1", "-watch", "-every", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "round ") {
		t.Fatalf("watch output missing:\n%s", out.String())
	}
}

func TestRunJSONTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := run([]string{"-topo", "line", "-n", "5", "-waves", "1", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"moves_per_action"`) || !strings.Contains(string(data), "B-action") {
		t.Fatalf("unexpected trace: %s", data[:min(len(data), 200)])
	}
	if !strings.HasPrefix(string(data), `{"t":"meta"`) || !strings.Contains(string(data), `{"t":"step"`) {
		t.Fatalf("trace is not JSONL in the obs schema: %s", data[:min(len(data), 200)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-topo", "moebius"},
		{"-daemon", "chaotic"},
		{"-corrupt", "gremlins"},
		{"-topo", "ring", "-n", "2"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestRunForest(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-topo", "star", "-n", "6", "-waves", "1", "-forest"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "final forest:") || !strings.Contains(out.String(), "legal tree (root p0)") {
		t.Fatalf("forest output missing:\n%s", out.String())
	}
}
