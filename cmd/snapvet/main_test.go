package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-list"}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("run(-list) = %d, %v", code, err)
	}
	for _, name := range []string{
		"guardpure", "writelocal", "detrange", "hotalloc",
		"radiusbound", "sharddisjoint", "obspure",
	} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, buf.String())
		}
	}
}

func TestBadFlag(t *testing.T) {
	code, err := run([]string{"-definitely-not-a-flag"}, io.Discard)
	if err == nil || code != 2 {
		t.Errorf("run(bad flag) = %d, %v; want 2 and an error", code, err)
	}
}
