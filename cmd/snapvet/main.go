// Command snapvet is the project-specific static analyzer: it type-checks
// every package in the module and enforces the paper's locally shared
// memory model plus the engine's determinism and zero-allocation
// invariants, with four analyzers:
//
//	guardpure   functions reachable from protocol guards (Enabled) are
//	            pure: no shared-state writes, map/channel mutation, or I/O
//	writelocal  action bodies (Apply/ApplyInto) write only the acting
//	            processor's state, per the model's write rule
//	detrange    no map iteration, wall-clock reads, or global math/rand in
//	            the deterministic engine packages
//	hotalloc    no per-step allocation constructs in //snapvet:hotpath
//	            functions (static complement of the CI alloc gates)
//
// Usage:
//
//	snapvet [-json] [-baseline FILE] [-write-baseline] [-list] [packages]
//
// Findings print as "file:line:col: [analyzer] message"; the exit status
// is non-zero when any finding is not covered by the baseline file.
// Intentional exceptions are annotated in source: `//snapvet:ok <reason>`
// on (or directly above) the flagged line, and `//snapvet:hotpath` in a
// function's doc comment opts it into hotalloc. A `//snapvet:ok` without
// a reason is itself an error — the tree carries no unexplained
// suppressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"snappif/internal/analysis"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapvet:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("snapvet", flag.ContinueOnError)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as a JSON array")
		baseline  = fs.String("baseline", "", "baseline file of grandfathered findings (default <module>/.snapvet.baseline)")
		writeBase = fs.Bool("write-baseline", false, "write the current findings to the baseline file and exit 0")
		list      = fs.Bool("list", false, "list the analyzers and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(out, "%-11s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	prog, err := analysis.Load(".", fs.Args()...)
	if err != nil {
		return 2, err
	}
	basePath := *baseline
	if basePath == "" {
		basePath = filepath.Join(prog.ModuleDir, ".snapvet.baseline")
	}

	findings := analysis.Run(prog, nil)
	if *writeBase {
		if err := analysis.WriteBaseline(basePath, findings); err != nil {
			return 2, err
		}
		fmt.Fprintf(out, "snapvet: wrote %d finding(s) to %s\n", len(findings), basePath)
		return 0, nil
	}

	base, err := analysis.ReadBaseline(basePath)
	if err != nil {
		return 2, err
	}
	fresh, old := analysis.Filter(findings, base)

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if fresh == nil {
			fresh = []analysis.Finding{}
		}
		if err := enc.Encode(fresh); err != nil {
			return 2, err
		}
	} else {
		for _, f := range fresh {
			fmt.Fprintln(out, f.String())
		}
	}
	if len(old) > 0 {
		fmt.Fprintf(os.Stderr, "snapvet: %d baselined finding(s) suppressed\n", len(old))
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "snapvet: %d new finding(s)\n", len(fresh))
		return 1, nil
	}
	return 0, nil
}
