// Command snapvet is the project-specific static analyzer: it type-checks
// every package in the module and enforces the paper's locally shared
// memory model plus the engine's determinism and zero-allocation
// invariants, with seven analyzers:
//
//	guardpure      functions reachable from protocol guards (Enabled) are
//	               pure: no shared-state writes, map/channel mutation, or I/O
//	writelocal     action bodies (Apply/ApplyInto) write only the acting
//	               processor's state, per the model's write rule
//	detrange       no map iteration, wall-clock reads, or global math/rand in
//	               the deterministic engine and cmd packages
//	hotalloc       no allocation constructs reachable from
//	               //snapvet:hotpath functions (static complement of the
//	               CI alloc gates)
//	radiusbound    a protocol's Enabled reads state at most DirtyRadius
//	               hops from the acting processor, so the incremental
//	               enabled cache re-checks every guard a step can change
//	sharddisjoint  sweep workers in the flat engine write shared memory
//	               only through shard-derived indices or per-worker slots
//	obspure        the nil-receiver path of every //snapvet:nilsafe
//	               observer method is a no-op: no dereference, no side
//	               effect, no allocation
//
// Usage:
//
//	snapvet [-json] [-tests] [-baseline FILE] [-write-baseline]
//	        [-baseline-update] [-list] [packages]
//
// Findings print as "file:line:col: [analyzer] message"; the exit status
// is non-zero when any error-severity finding is not covered by the
// baseline file. Advisory findings (for example an overstated
// DirtyRadius) print but never fail the run. -tests re-loads every test
// binary's package variants so *_test.go files are analyzed too.
// -baseline-update regenerates the baseline from the current findings and
// reports the delta; the file is byte-stable under repeated updates.
//
// Intentional exceptions are annotated in source: `//snapvet:ok <reason>`
// on (or directly above) the flagged line; `//snapvet:hotpath` and
// `//snapvet:coldpath <reason>` in a function's doc comment opt it into
// or out of hotalloc's reachability audit; `//snapvet:nilsafe` on a type
// opts its methods into obspure; `//snapvet:shardcheck` in a package's
// doc comment opts it into sharddisjoint. A `//snapvet:ok` without a
// reason is itself an error — the tree carries no unexplained
// suppressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"snappif/internal/analysis"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapvet:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("snapvet", flag.ContinueOnError)
	var (
		jsonOut    = fs.Bool("json", false, "emit findings as a JSON array")
		tests      = fs.Bool("tests", false, "also load and analyze test variants (*_test.go files)")
		baseline   = fs.String("baseline", "", "baseline file of grandfathered findings (default <module>/.snapvet.baseline)")
		writeBase  = fs.Bool("write-baseline", false, "write the current findings to the baseline file and exit 0")
		updateBase = fs.Bool("baseline-update", false, "regenerate the baseline from current findings, report the delta, and exit 0")
		list       = fs.Bool("list", false, "list the analyzers and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(out, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	load := analysis.Load
	if *tests {
		load = analysis.LoadTests
	}
	prog, err := load(".", fs.Args()...)
	if err != nil {
		return 2, err
	}
	basePath := *baseline
	if basePath == "" {
		basePath = filepath.Join(prog.ModuleDir, ".snapvet.baseline")
	}

	findings := analysis.Run(prog, nil)
	if *writeBase {
		if err := analysis.WriteBaseline(basePath, findings); err != nil {
			return 2, err
		}
		fmt.Fprintf(out, "snapvet: wrote %d finding(s) to %s\n", len(findings), basePath)
		return 0, nil
	}
	if *updateBase {
		added, removed, kept, err := analysis.UpdateBaseline(basePath, findings)
		if err != nil {
			return 2, err
		}
		fmt.Fprintf(out, "snapvet: baseline %s: %d added, %d removed, %d kept\n",
			basePath, added, removed, kept)
		return 0, nil
	}

	base, err := analysis.ReadBaseline(basePath)
	if err != nil {
		return 2, err
	}
	fresh, old := analysis.Filter(findings, base)

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if fresh == nil {
			fresh = []analysis.Finding{}
		}
		if err := enc.Encode(fresh); err != nil {
			return 2, err
		}
	} else {
		for _, f := range fresh {
			fmt.Fprintln(out, f.String())
		}
	}
	if len(old) > 0 {
		fmt.Fprintf(os.Stderr, "snapvet: %d baselined finding(s) suppressed\n", len(old))
	}
	errs, warns := 0, 0
	for _, f := range fresh {
		if f.Severity == "warning" {
			warns++
		} else {
			errs++
		}
	}
	if warns > 0 {
		fmt.Fprintf(os.Stderr, "snapvet: %d advisory finding(s)\n", warns)
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "snapvet: %d new finding(s)\n", errs)
		return 1, nil
	}
	return 0, nil
}
