// Command pifcheck runs the exhaustive model checker: it enumerates every
// initial configuration of a PIF protocol on a small network and every
// daemon schedule, and verifies snap-stabilization (safety of every
// completed wave), deadlock freedom, and reachability of the clean
// configuration. Checking the self-stabilizing baseline instead synthesizes
// a concrete counterexample — the paper's separation, derived by machine.
//
// Usage:
//
//	pifcheck -topo line -n 3 -daemon central            # prove snap PIF
//	pifcheck -proto selfstab -topo line -n 4            # find the baseline's flaw
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"snappif/internal/core"
	"snappif/internal/fault"
	"snappif/internal/graph"
	"snappif/internal/mc"
	"snappif/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pifcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pifcheck", flag.ContinueOnError)
	var (
		proto   = fs.String("proto", "snap", "protocol: snap|selfstab")
		topoN   = fs.String("topo", "line", "topology: line|ring|star")
		n       = fs.Int("n", 3, "network size (keep tiny in full mode: the state space is the full domain product)")
		root    = fs.Int("root", 0, "root processor")
		daemonN = fs.String("daemon", "central", "daemon power: central|distributed")
		mode    = fs.String("mode", "full", "full: enumerate every initial configuration; faults: explore all schedules from every fault injector's output (snap only, scales to larger n)")
		seeds   = fs.Int("seeds", 5, "with -mode faults, seeds per fault pattern")
		limit   = fs.Int("limit", 0, "abort if the reachable state count exceeds this (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := buildTopo(*topoN, *n)
	if err != nil {
		return err
	}
	var power mc.DaemonPower
	switch strings.ToLower(*daemonN) {
	case "central":
		power = mc.CentralPower
	case "distributed":
		power = mc.DistributedPower
	default:
		return fmt.Errorf("unknown daemon power %q", *daemonN)
	}
	var model mc.Model
	switch strings.ToLower(*proto) {
	case "snap":
		model, err = mc.NewSnapModel(g, *root)
	case "selfstab":
		model, err = mc.NewSelfStabModel(g, *root)
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
	if err != nil {
		return err
	}

	checker := mc.New(model, power)
	if *limit > 0 {
		checker.SetLimit(*limit)
	}
	//snapvet:ok harness wall-clock for the human progress report; never feeds checker state
	start := time.Now()
	var res mc.Result
	switch strings.ToLower(*mode) {
	case "full":
		fmt.Fprintf(out, "exhaustively checking %s on %s under the %s daemon…\n", *proto, g, *daemonN)
		res, err = checker.Run()
	case "faults":
		if strings.ToLower(*proto) != "snap" {
			return fmt.Errorf("-mode faults is only wired for the snap protocol")
		}
		configs, cerr := faultConfigs(g, *root, *seeds)
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(out, "systematically checking %s on %s: all %s schedules from %d injected configurations…\n",
			*proto, g, *daemonN, len(configs))
		res, err = checker.RunFrom(configs)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "explored: %d initial configurations, %d states, %d transitions (%.1fs)\n",
		//snapvet:ok harness wall-clock for the human progress report; never feeds checker state
		res.InitialStates, res.States, res.Transitions, time.Since(start).Seconds())

	if res.OK() {
		fmt.Fprintln(out, "VERIFIED: every completed wave is delivered and acknowledged ([PIF1],[PIF2]),")
		fmt.Fprintln(out, "          no reachable deadlock, the clean configuration is always reachable.")
		return nil
	}
	if res.SafetyViolation != nil {
		fmt.Fprintln(out, "SAFETY VIOLATION (counterexample):")
		for _, line := range res.SafetyViolation {
			fmt.Fprintln(out, "  "+line)
		}
	}
	if res.Deadlock != nil {
		fmt.Fprintln(out, "DEADLOCK reachable:")
		for _, line := range res.Deadlock {
			fmt.Fprintln(out, "  "+line)
		}
	}
	if res.LivenessViolation != nil {
		fmt.Fprintln(out, "LIVENESS VIOLATION (clean configuration unreachable from):")
		for _, line := range res.LivenessViolation {
			fmt.Fprintln(out, "  "+line)
		}
	}
	return fmt.Errorf("%s failed exhaustive checking", *proto)
}

// faultConfigs builds the systematic-mode seed set: every fault injector's
// output on `seeds` RNG seeds, plus the clean configuration.
func faultConfigs(g *graph.Graph, root, seeds int) ([]*sim.Configuration, error) {
	pr, err := core.New(g, root)
	if err != nil {
		return nil, err
	}
	var configs []*sim.Configuration
	for _, inj := range append(fault.All(), fault.Clean()) {
		for s := 0; s < seeds; s++ {
			cfg := sim.NewConfiguration(g, pr)
			inj.Apply(cfg, pr, rand.New(rand.NewSource(int64(s))))
			configs = append(configs, cfg)
		}
	}
	return configs, nil
}

func buildTopo(name string, n int) (*graph.Graph, error) {
	switch strings.ToLower(name) {
	case "line":
		return graph.Line(n)
	case "ring":
		return graph.Ring(n)
	case "star":
		return graph.Star(n)
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}
