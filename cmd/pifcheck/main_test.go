package main

import (
	"strings"
	"testing"
)

func TestCheckSnapLine3(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-proto", "snap", "-topo", "line", "-n", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "VERIFIED") {
		t.Fatalf("snap protocol not verified:\n%s", out.String())
	}
}

func TestCheckSelfStabLine4FindsViolation(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-proto", "selfstab", "-topo", "line", "-n", "4"}, &out)
	if err == nil {
		t.Fatalf("baseline passed checking:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "SAFETY VIOLATION") {
		t.Fatalf("violation not reported:\n%s", out.String())
	}
}

func TestCheckFaultsMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "faults", "-topo", "ring", "-n", "5", "-seeds", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "VERIFIED") {
		t.Fatalf("faults mode not verified:\n%s", out.String())
	}
	// faults mode is snap-only.
	var out2 strings.Builder
	if err := run([]string{"-mode", "faults", "-proto", "selfstab"}, &out2); err == nil {
		t.Fatal("faults mode accepted for the baseline")
	}
	var out3 strings.Builder
	if err := run([]string{"-mode", "sideways"}, &out3); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestCheckRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-proto", "quantum"},
		{"-topo", "kleinbottle"},
		{"-daemon", "laplace"},
		{"-topo", "ring", "-n", "2"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestCheckLimitFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-topo", "line", "-n", "3", "-limit", "100"}, &out); err == nil {
		t.Fatal("limit not enforced")
	}
}
