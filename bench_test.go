// Repository-level benchmarks: one benchmark family per experiment of the
// harness (E1–E12, F1–F4, MC — see DESIGN.md §3 and EXPERIMENTS.md), plus micro
// benchmarks of the simulation engine's hot paths. Custom metrics report
// the quantities the paper bounds (rounds per cycle, rounds to stabilize).
//
// Run with:
//
//	go test -bench=. -benchmem
package snappif_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"snappif"

	"snappif/internal/baseline/echo"
	"snappif/internal/baseline/selfstab"
	"snappif/internal/baseline/treepif"
	"snappif/internal/check"
	"snappif/internal/core"
	"snappif/internal/exp"
	"snappif/internal/fault"
	"snappif/internal/flat"
	"snappif/internal/graph"
	"snappif/internal/mc"
	"snappif/internal/msgnet"
	"snappif/internal/msgnet/register"
	"snappif/internal/sim"
	"snappif/internal/wave"
)

// benchTopologies are the networks used across the benchmark families.
func benchTopologies(b *testing.B) []*graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	var out []*graph.Graph
	for _, f := range []func() (*graph.Graph, error){
		func() (*graph.Graph, error) { return graph.Line(32) },
		func() (*graph.Graph, error) { return graph.Ring(32) },
		func() (*graph.Graph, error) { return graph.Grid(6, 6) },
		func() (*graph.Graph, error) { return graph.Hypercube(5) },
		func() (*graph.Graph, error) { return graph.RandomConnected(32, 0.15, rng) },
	} {
		g, err := f()
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, g)
	}
	return out
}

// BenchmarkE1CycleRounds measures full PIF cycles from a clean start
// (Theorem 4's workload) and reports rounds per cycle next to the 5h+5
// bound.
func BenchmarkE1CycleRounds(b *testing.B) {
	for _, g := range benchTopologies(b) {
		b.Run(g.Name(), func(b *testing.B) {
			pr := core.MustNew(g, 0)
			cfg := sim.NewConfiguration(g, pr)
			obs := check.NewCycleObserver(pr)
			b.ResetTimer()
			if _, err := sim.Run(cfg, pr, sim.Synchronous{}, sim.Options{
				MaxSteps:  1 << 40,
				Observers: []sim.Observer{obs},
				StopWhen:  obs.StopAfterCycles(b.N),
			}); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			var rounds, height int
			for _, rec := range obs.Cycles {
				rounds += rec.Rounds()
				if rec.Height > height {
					height = rec.Height
				}
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/cycle")
			b.ReportMetric(float64(5*height+5), "bound(5h+5)")
		})
	}
}

// BenchmarkE2ErrorCorrection measures recovery from a uniformly random
// configuration to a normal configuration (Theorem 1's workload).
func BenchmarkE2ErrorCorrection(b *testing.B) {
	g, err := graph.RandomConnected(32, 0.15, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	inj := fault.UniformRandom()
	totalRounds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := sim.NewConfiguration(g, pr)
		inj.Apply(cfg, pr, rand.New(rand.NewSource(int64(i))))
		b.StartTimer()
		res, err := sim.Run(cfg, pr, sim.DistributedRandom{P: 0.5}, sim.Options{
			Seed: int64(i) + 1,
			StopWhen: func(rs *sim.RunState) bool {
				return len(check.Abnormal(rs.Config, pr)) == 0
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		totalRounds += res.Rounds
	}
	b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds/recovery")
	b.ReportMetric(float64(3*pr.Lmax+3), "bound(3Lmax+3)")
}

// BenchmarkE3Stabilization measures full stabilization to an SBN
// configuration from every adversarial fault pattern (Theorems 2–3).
func BenchmarkE3Stabilization(b *testing.B) {
	g, err := graph.RandomConnected(24, 0.2, rand.New(rand.NewSource(5)))
	if err != nil {
		b.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	for _, inj := range fault.All() {
		b.Run(inj.Name, func(b *testing.B) {
			totalRounds := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := sim.NewConfiguration(g, pr)
				inj.Apply(cfg, pr, rand.New(rand.NewSource(int64(i))))
				b.StartTimer()
				res, err := sim.Run(cfg, pr, sim.DistributedRandom{P: 0.5}, sim.Options{
					Seed: int64(i) + 1,
					StopWhen: func(rs *sim.RunState) bool {
						return check.IsSBN(rs.Config, pr)
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				totalRounds += res.Rounds
			}
			b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds/stabilize")
		})
	}
}

// BenchmarkE4SnapVsSelfStab measures the first wave from a corrupted
// configuration for the snap protocol and the self-stabilizing baseline —
// the head-to-head the paper's Contribution section draws.
func BenchmarkE4SnapVsSelfStab(b *testing.B) {
	g, err := graph.Ring(24)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("snap-pif", func(b *testing.B) {
		pr := core.MustNew(g, 0)
		violations := 0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfg := sim.NewConfiguration(g, pr)
			fault.UniformRandom().Apply(cfg, pr, rand.New(rand.NewSource(int64(i))))
			obs := check.NewCycleObserver(pr)
			b.StartTimer()
			if _, err := sim.Run(cfg, pr, sim.DistributedRandom{P: 0.5}, sim.Options{
				Seed:      int64(i) + 1,
				Observers: []sim.Observer{obs},
				StopWhen:  obs.StopAfterCycles(1),
			}); err != nil {
				b.Fatal(err)
			}
			if len(obs.Cycles) == 0 || !obs.Cycles[0].OK() {
				violations++
			}
		}
		b.ReportMetric(float64(violations)/float64(b.N), "violations/wave")
	})
	b.Run("selfstab-pif", func(b *testing.B) {
		pr := selfstab.MustNew(g, 0)
		violations := 0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfg := sim.NewConfiguration(g, pr)
			selfstab.RandomConfiguration(cfg, pr, rand.New(rand.NewSource(int64(i))))
			obs := selfstab.NewCycleObserver(pr)
			b.StartTimer()
			if _, err := sim.Run(cfg, pr, sim.DistributedRandom{P: 0.5}, sim.Options{
				Seed:      int64(i) + 1,
				Observers: []sim.Observer{obs},
				StopWhen:  obs.StopAfterCycles(1),
			}); err != nil {
				b.Fatal(err)
			}
			if len(obs.Cycles) == 0 || !obs.Cycles[0].OK(g.N()) {
				violations++
			}
		}
		b.ReportMetric(float64(violations)/float64(b.N), "violations/wave")
	})
}

// BenchmarkE5Invariants measures the cost of full invariant monitoring
// (Properties 1–2 plus domains) attached to every computation step.
func BenchmarkE5Invariants(b *testing.B) {
	g, err := graph.Grid(5, 5)
	if err != nil {
		b.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	for _, monitored := range []bool{false, true} {
		name := "bare"
		if monitored {
			name = "monitored"
		}
		b.Run(name, func(b *testing.B) {
			cfg := sim.NewConfiguration(g, pr)
			obs := check.NewCycleObserver(pr)
			observers := []sim.Observer{obs}
			var mon *check.Monitor
			if monitored {
				mon = check.NewMonitor(pr, check.StandardChecks())
				observers = append(observers, mon)
			}
			b.ResetTimer()
			if _, err := sim.Run(cfg, pr, sim.Synchronous{}, sim.Options{
				MaxSteps:  1 << 40,
				Observers: observers,
				StopWhen:  obs.StopAfterCycles(b.N),
			}); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if mon != nil && len(mon.Violations) > 0 {
				b.Fatalf("invariant violations: %v", mon.Violations[0])
			}
		})
	}
}

// BenchmarkE6Chordless measures clean-start cycles with the chordless
// ParentPath assertion evaluated on every step (Theorem 4's structural
// property).
func BenchmarkE6Chordless(b *testing.B) {
	g, err := graph.RandomConnected(24, 0.25, rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	cfg := sim.NewConfiguration(g, pr)
	obs := check.NewCycleObserver(pr)
	mon := check.NewMonitor(pr, []check.Check{{Name: "chordless", Fn: check.ChordlessParentPaths}})
	b.ResetTimer()
	if _, err := sim.Run(cfg, pr, sim.DistributedRandom{P: 0.5}, sim.Options{
		MaxSteps:  1 << 40,
		Observers: []sim.Observer{obs, mon},
		StopWhen:  obs.StopAfterCycles(b.N),
	}); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if len(mon.Violations) > 0 {
		b.Fatalf("chordless violated: %v", mon.Violations[0])
	}
}

// BenchmarkE7AblationFokGate compares clean-cycle throughput with and
// without the Count/Fok gate (the snap protocol vs the gate-less baseline).
func BenchmarkE7AblationFokGate(b *testing.B) {
	g, err := graph.Grid(5, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("with-gate", func(b *testing.B) {
		pr := core.MustNew(g, 0)
		cfg := sim.NewConfiguration(g, pr)
		obs := check.NewCycleObserver(pr)
		b.ResetTimer()
		if _, err := sim.Run(cfg, pr, sim.Synchronous{}, sim.Options{
			MaxSteps:  1 << 40,
			Observers: []sim.Observer{obs},
			StopWhen:  obs.StopAfterCycles(b.N),
		}); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("without-gate", func(b *testing.B) {
		pr := selfstab.MustNew(g, 0)
		cfg := sim.NewConfiguration(g, pr)
		obs := selfstab.NewCycleObserver(pr)
		b.ResetTimer()
		if _, err := sim.Run(cfg, pr, sim.Synchronous{}, sim.Options{
			MaxSteps:  1 << 40,
			Observers: []sim.Observer{obs},
			StopWhen:  obs.StopAfterCycles(b.N),
		}); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkE8Daemons measures cycle cost under each daemon.
func BenchmarkE8Daemons(b *testing.B) {
	g, err := graph.Grid(5, 5)
	if err != nil {
		b.Fatal(err)
	}
	daemons := []sim.Daemon{
		sim.Synchronous{},
		sim.Central{Order: sim.CentralRandom},
		sim.DistributedRandom{P: 0.5},
		sim.LocallyCentral{},
		&sim.Adversarial{},
	}
	for _, d := range daemons {
		b.Run(d.Name(), func(b *testing.B) {
			pr := core.MustNew(g, 0)
			cfg := sim.NewConfiguration(g, pr)
			obs := check.NewCycleObserver(pr)
			b.ResetTimer()
			if _, err := sim.Run(cfg, pr, d, sim.Options{
				MaxSteps:  1 << 40,
				Observers: []sim.Observer{obs},
				StopWhen:  obs.StopAfterCycles(b.N),
			}); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			rounds := 0
			for _, rec := range obs.Cycles {
				rounds += rec.Rounds()
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/cycle")
		})
	}
}

// BenchmarkE9TreeBaseline compares the pre-constructed-tree PIF with the
// snap protocol on the same network.
func BenchmarkE9TreeBaseline(b *testing.B) {
	g, err := graph.Grid(5, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("tree-pif", func(b *testing.B) {
		pr := treepif.MustNewBFS(g, 0)
		cfg := sim.NewConfiguration(g, pr)
		obs := treepif.NewCycleObserver(pr)
		b.ResetTimer()
		if _, err := sim.Run(cfg, pr, sim.Synchronous{}, sim.Options{
			MaxSteps:  1 << 40,
			Observers: []sim.Observer{obs},
			StopWhen:  obs.StopAfterCycles(b.N),
		}); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("snap-pif", func(b *testing.B) {
		pr := core.MustNew(g, 0)
		cfg := sim.NewConfiguration(g, pr)
		obs := check.NewCycleObserver(pr)
		b.ResetTimer()
		if _, err := sim.Run(cfg, pr, sim.Synchronous{}, sim.Options{
			MaxSteps:  1 << 40,
			Observers: []sim.Observer{obs},
			StopWhen:  obs.StopAfterCycles(b.N),
		}); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkE10Applications measures one application operation per
// iteration: an exact network-wide infimum via a single wave.
func BenchmarkE10Applications(b *testing.B) {
	g, err := graph.RandomConnected(24, 0.2, rand.New(rand.NewSource(9)))
	if err != nil {
		b.Fatal(err)
	}
	values := make([]int64, g.N())
	for p := range values {
		values[p] = int64((p * 31) % 101)
	}
	b.Run("infimum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wave.Infimum(g, 0, values, wave.Min, wave.WithSeed(int64(i)+1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reset", func(b *testing.B) {
		rc, err := wave.NewResetCoordinator(g, 0, wave.WithSeed(2))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rc.Reset(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11MessagePassing compares the classic echo algorithm with the
// link-register emulation of the snap protocol, per wave, over the
// discrete-event message-passing simulator.
func BenchmarkE11MessagePassing(b *testing.B) {
	g, err := graph.Grid(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("echo", func(b *testing.B) {
		msgs := 0
		for i := 0; i < b.N; i++ {
			res, err := echo.Run(g, 0, uint64(i)+1, msgnet.Options{Seed: int64(i) + 1})
			if err != nil {
				b.Fatal(err)
			}
			msgs += res.Messages
		}
		b.ReportMetric(float64(msgs)/float64(b.N), "msgs/wave")
	})
	b.Run("register-snap", func(b *testing.B) {
		res, err := register.Run(g, 0, b.N, register.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Messages)/float64(b.N), "msgs/wave")
	})
}

// BenchmarkModelChecker measures the exhaustive checker's throughput on the
// smallest instance (the full 373k-configuration product on a 3-line).
func BenchmarkModelChecker(b *testing.B) {
	g, err := graph.Line(3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		m, err := mc.NewSnapModel(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		res, err := mc.New(m, mc.CentralPower).Run()
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK() {
			b.Fatal("verification failed")
		}
		b.ReportMetric(float64(res.States), "states")
	}
}

// BenchmarkConcurrentRuntime measures goroutine-per-processor waves.
func BenchmarkConcurrentRuntime(b *testing.B) {
	topo, err := snappif.Random(32, 0.15, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := snappif.RunConcurrent(topo, 0, b.N, snappif.ConcurrentOptions{
		Timeout: 10 * time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	for _, w := range res.Waves {
		if w.Delivered != topo.N()-1 {
			b.Fatalf("delivery violated: %d/%d", w.Delivered, topo.N()-1)
		}
	}
}

// BenchmarkGuardEvaluation measures the hot path of the simulator: a full
// enabled-set computation over a configuration.
func BenchmarkGuardEvaluation(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g, err := graph.RandomConnected(n, 0.1, rand.New(rand.NewSource(2)))
			if err != nil {
				b.Fatal(err)
			}
			pr := core.MustNew(g, 0)
			cfg := sim.NewConfiguration(g, pr)
			// A mid-broadcast configuration exercises the expensive guards.
			fault.PhantomTree().Apply(cfg, pr, rand.New(rand.NewSource(3)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := sim.EnabledChoices(cfg, pr); len(got) == 0 {
					b.Fatal("no enabled processor in mid-broadcast configuration")
				}
			}
		})
	}
}

// BenchmarkExperimentHarness runs the full quick experiment suite once per
// iteration — the end-to-end cost of regenerating every table.
func BenchmarkExperimentHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range exp.All() {
			out, err := e.Run(exp.Options{Quick: true, Trials: 1, Seed: int64(i) + 1})
			if err != nil {
				b.Fatalf("%s: %v", e.ID, err)
			}
			if out.BoundExceeded != 0 || out.SnapViolations != 0 {
				b.Fatalf("%s: reproduction failure", e.ID)
			}
		}
	}
}

// BenchmarkIncrementalGuards compares the runner's incremental
// guard-evaluation fast path (LocalProtocol) with full per-step
// recomputation, under a central daemon where the gap is largest.
func BenchmarkIncrementalGuards(b *testing.B) {
	g, err := graph.RandomConnected(128, 0.05, rand.New(rand.NewSource(6)))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, proto sim.Protocol, pr *core.Protocol) {
		cfg := sim.NewConfiguration(g, pr)
		obs := check.NewCycleObserver(pr)
		b.ResetTimer()
		if _, err := sim.Run(cfg, proto, sim.Central{Order: sim.CentralRandom}, sim.Options{
			MaxSteps:  1 << 40,
			Observers: []sim.Observer{obs},
			StopWhen:  obs.StopAfterCycles(b.N),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("incremental", func(b *testing.B) {
		pr := core.MustNew(g, 0)
		run(b, pr, pr)
	})
	b.Run("full-recompute", func(b *testing.B) {
		pr := core.MustNew(g, 0)
		run(b, nonLocal{pr}, pr)
	})
}

// nonLocal hides the LocalProtocol marker.
type nonLocal struct{ p sim.Protocol }

func (h nonLocal) Name() string                                   { return h.p.Name() }
func (h nonLocal) ActionNames() []string                          { return h.p.ActionNames() }
func (h nonLocal) InitialState(p int) sim.State                   { return h.p.InitialState(p) }
func (h nonLocal) Enabled(c *sim.Configuration, p int) []int      { return h.p.Enabled(c, p) }
func (h nonLocal) Apply(c *sim.Configuration, p, a int) sim.State { return h.p.Apply(c, p, a) }

// BenchmarkLargeWave measures a full wave on a 512-processor network —
// the scale a downstream simulation study would run at.
func BenchmarkLargeWave(b *testing.B) {
	g, err := graph.RandomConnected(512, 0.01, rand.New(rand.NewSource(12)))
	if err != nil {
		b.Fatal(err)
	}
	pr := core.MustNew(g, 0)
	cfg := sim.NewConfiguration(g, pr)
	obs := check.NewCycleObserver(pr)
	b.ResetTimer()
	if _, err := sim.Run(cfg, pr, sim.DistributedRandom{P: 0.5}, sim.Options{
		MaxSteps:  1 << 40,
		Observers: []sim.Observer{obs},
		StopWhen:  obs.StopAfterCycles(b.N),
	}); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	for _, rec := range obs.Cycles {
		if !rec.OK() {
			b.Fatal("delivery violated at scale")
		}
	}
}

// BenchmarkE12MultiInitiator measures one all-initiators-once round of the
// concurrent-initiator composition.
func BenchmarkE12MultiInitiator(b *testing.B) {
	topo, err := snappif.Grid(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	net, err := snappif.NewMultiNetwork(topo, []int{0, 5, 15}, snappif.WithSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	waves, err := net.RunWavesEach(b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	for _, w := range waves {
		if !w.OK(topo.N()) {
			b.Fatal("concurrent wave violated")
		}
	}
}

// benchStepper abstracts the two engines for the step benchmarks.
type benchStepper interface {
	Step() (bool, error)
}

// benchSteps drives a warm stepper for b.N committed steps. The snap-PIF
// protocol cycles forever from the clean start, so the loop never hits a
// terminal configuration.
func benchSteps(b *testing.B, s benchStepper, warmup int) {
	b.Helper()
	for i := 0; i < warmup; i++ {
		if done, err := s.Step(); done {
			b.Fatalf("run ended during warm-up: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if done, err := s.Step(); done {
			b.Fatalf("run ended during measurement: %v", err)
		}
	}
}

// benchStepSizes are the network sizes of the engine step benchmarks:
// large enough that the SoA layout matters, small enough for benchstat
// iteration counts.
var benchStepSizes = []int{1_000, 10_000}

// BenchmarkStepGeneric measures one committed step of the interface-based
// engine (sim.Runner) on the snap-PIF protocol under the synchronous
// daemon — the baseline the flat engine is compared against (ISSUE 5
// acceptance: flat ≥ 3x steps/sec at N=10k).
func BenchmarkStepGeneric(b *testing.B) {
	for _, n := range benchStepSizes {
		b.Run(fmt.Sprintf("ring-%d", n), func(b *testing.B) {
			g, err := graph.Ring(n)
			if err != nil {
				b.Fatal(err)
			}
			pr := core.MustNew(g, 0)
			cfg := sim.NewConfiguration(g, pr)
			r := sim.NewRunner(cfg, pr, sim.Synchronous{}, sim.Options{Seed: 1, MaxSteps: 1 << 40})
			benchSteps(b, r, 200)
		})
	}
}

// BenchmarkStepFlat measures the same step on the flat SoA kernel
// (internal/flat), serial sweep. Identical schedule to BenchmarkStepGeneric
// — the engines are bit-identical — so ns/op is directly comparable.
func BenchmarkStepFlat(b *testing.B) {
	for _, n := range benchStepSizes {
		b.Run(fmt.Sprintf("ring-%d", n), func(b *testing.B) {
			g, err := graph.Ring(n)
			if err != nil {
				b.Fatal(err)
			}
			k, err := flat.FromCore(core.MustNew(g, 0))
			if err != nil {
				b.Fatal(err)
			}
			fc, err := flat.NewConfig(k)
			if err != nil {
				b.Fatal(err)
			}
			r, err := flat.NewRunner(fc, k, sim.Synchronous{}, flat.Options{
				Options: sim.Options{Seed: 1, MaxSteps: 1 << 40},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			benchSteps(b, r, 200)
		})
	}
}

// BenchmarkSweepParallel measures the flat engine's sharded guard sweep
// against its serial mode on a wide grid (broad synchronous frontiers, so
// sweeps are large). On a single-core box (GOMAXPROCS=1) the sharded
// numbers measure pool overhead, not speedup — compare with the gomaxprocs
// stamp in the benchstat environment.
func BenchmarkSweepParallel(b *testing.B) {
	g, err := graph.Grid(100, 100)
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name    string
		workers int
	}{
		{"serial", 0},
		{"sharded-2", 2},
		{"sharded-gomaxprocs", runtime.GOMAXPROCS(0)},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			k, err := flat.FromCore(core.MustNew(g, 0))
			if err != nil {
				b.Fatal(err)
			}
			fc, err := flat.NewConfig(k)
			if err != nil {
				b.Fatal(err)
			}
			r, err := flat.NewRunner(fc, k, sim.Synchronous{}, flat.Options{
				Options:      sim.Options{Seed: 1, MaxSteps: 1 << 40},
				SweepWorkers: m.workers,
				MinSweep:     1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			benchSteps(b, r, 200)
		})
	}
}
