package snappif

import (
	"math/rand"
	"time"

	"snappif/internal/core"
	"snappif/internal/msgnet/register"
	"snappif/internal/sim"
)

// MessagePassingResult reports a run of the protocol over asynchronous
// message passing (link-register emulation).
type MessagePassingResult struct {
	// Waves lists per-wave delivery counts.
	Waves []ConcurrentWave
	// Messages is the total number of messages exchanged.
	Messages int
	// Elapsed is the simulated completion time.
	Elapsed time.Duration
}

// MessagePassingOptions configures RunMessagePassing.
type MessagePassingOptions struct {
	// Corrupt, if non-zero, corrupts the initial states.
	Corrupt Corruption
	// Seed drives link delays and corruption (default 1).
	Seed int64
	// Refresh is the register re-broadcast period (default 5ms simulated).
	Refresh time.Duration
}

// RunMessagePassing executes the protocol in a simulated asynchronous
// message-passing network: every processor caches its neighbors' states
// (refreshed by state-broadcast messages over FIFO links with randomized
// delays) and evaluates the paper's guards against the caches — the
// classic link-register construction.
//
// The construction is weaker than the paper's shared-memory model (no
// composite atomicity), so snap-stabilization is not guaranteed here; what
// is preserved — and what the test suite asserts — is correct delivery
// from a clean start and convergence to correct waves after corruption.
// See internal/msgnet/register for the full discussion.
func RunMessagePassing(topo Topology, root, waves int, opts MessagePassingOptions) (MessagePassingResult, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	var corrupt func([]core.State, *core.Protocol)
	if opts.Corrupt != 0 {
		inj, err := injectorFor(opts.Corrupt)
		if err != nil {
			return MessagePassingResult{}, err
		}
		seed := opts.Seed
		corrupt = func(states []core.State, pr *core.Protocol) {
			cfg := &sim.Configuration{G: topo.g, States: make([]sim.State, len(states))}
			for p := range states {
				core.Set(cfg, p, states[p])
			}
			inj.Apply(cfg, pr, rand.New(rand.NewSource(seed)))
			for p := range states {
				states[p] = core.At(cfg, p)
			}
		}
	}
	res, err := register.Run(topo.g, root, waves, register.Options{
		Seed:    opts.Seed,
		Refresh: opts.Refresh,
		Corrupt: corrupt,
	})
	if err != nil {
		return MessagePassingResult{}, err
	}
	out := MessagePassingResult{Messages: res.Messages, Elapsed: res.Elapsed}
	for _, cs := range res.Cycles {
		out.Waves = append(out.Waves, ConcurrentWave{
			Message:      cs.Msg,
			Delivered:    cs.Delivered,
			Acknowledged: cs.Acked,
		})
	}
	return out, nil
}
