// Package snappif is a Go implementation of the snap-stabilizing
// Propagation of Information with Feedback (PIF) protocol for arbitrary
// networks of Cournier, Datta, Petit, and Villain (ICDCS 2002), together
// with the simulation machinery needed to run, corrupt, observe, and
// benchmark it.
//
// A PIF wave broadcasts a message from a distinguished root processor to
// every processor of an arbitrary connected network and collects an
// acknowledgment from every processor back at the root, building the
// spanning tree it needs on the fly — no pre-constructed spanning tree is
// assumed. The protocol is snap-stabilizing: started from *any* initial
// configuration (e.g. after an arbitrary transient fault), the very first
// wave the root initiates already behaves according to the specification.
//
// Quick start:
//
//	topo, _ := snappif.Ring(16)
//	net, _ := snappif.NewNetwork(topo, 0)
//	res, _ := net.Broadcast()
//	fmt.Println(res.Delivered, res.Rounds)
//
// See the examples/ directory for complete programs, and DESIGN.md /
// EXPERIMENTS.md for the mapping back to the paper.
package snappif

import (
	"math/rand"

	"snappif/internal/graph"
)

// Topology is a connected simple undirected network over processors
// 0..N-1.
type Topology struct {
	g *graph.Graph
}

// N returns the number of processors.
func (t Topology) N() int { return t.g.N() }

// M returns the number of bidirectional links.
func (t Topology) M() int { return t.g.M() }

// Name returns the topology's name (e.g. "ring-16").
func (t Topology) Name() string { return t.g.Name() }

// Diameter returns the network diameter.
func (t Topology) Diameter() int { return t.g.Diameter() }

// Neighbors returns a copy of processor p's neighbor list in its local
// order.
func (t Topology) Neighbors(p int) []int {
	return append([]int(nil), t.g.Neighbors(p)...)
}

// String implements fmt.Stringer.
func (t Topology) String() string { return t.g.String() }

func wrap(g *graph.Graph, err error) (Topology, error) {
	if err != nil {
		return Topology{}, err
	}
	return Topology{g: g}, nil
}

// Line returns the path topology on n processors.
func Line(n int) (Topology, error) { return wrap(graph.Line(n)) }

// Ring returns the cycle topology on n ≥ 3 processors.
func Ring(n int) (Topology, error) { return wrap(graph.Ring(n)) }

// Star returns the star topology with center 0 and n-1 leaves.
func Star(n int) (Topology, error) { return wrap(graph.Star(n)) }

// Complete returns the fully connected topology on n processors.
func Complete(n int) (Topology, error) { return wrap(graph.Complete(n)) }

// Grid returns the rows×cols mesh topology.
func Grid(rows, cols int) (Topology, error) { return wrap(graph.Grid(rows, cols)) }

// Torus returns the rows×cols torus topology (dims ≥ 3).
func Torus(rows, cols int) (Topology, error) { return wrap(graph.Torus(rows, cols)) }

// Hypercube returns the dim-dimensional hypercube topology.
func Hypercube(dim int) (Topology, error) { return wrap(graph.Hypercube(dim)) }

// BinaryTree returns the complete binary tree on n processors.
func BinaryTree(n int) (Topology, error) { return wrap(graph.BinaryTree(n)) }

// Caterpillar returns a spine-with-legs tree topology.
func Caterpillar(spine, legs int) (Topology, error) { return wrap(graph.Caterpillar(spine, legs)) }

// Lollipop returns a clique with a path tail attached.
func Lollipop(clique, tail int) (Topology, error) { return wrap(graph.Lollipop(clique, tail)) }

// Wheel returns a hub connected to every node of an outer cycle.
func Wheel(n int) (Topology, error) { return wrap(graph.Wheel(n)) }

// Circulant returns the circulant topology C_n(jumps).
func Circulant(n int, jumps []int) (Topology, error) { return wrap(graph.Circulant(n, jumps)) }

// Barbell returns two cliques joined by a bridge path.
func Barbell(clique, bridge int) (Topology, error) { return wrap(graph.Barbell(clique, bridge)) }

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) (Topology, error) { return wrap(graph.CompleteBipartite(a, b)) }

// KaryTree returns the complete k-ary tree on n processors.
func KaryTree(k, n int) (Topology, error) { return wrap(graph.KaryTree(k, n)) }

// Random returns a connected random topology: a random spanning tree plus
// each extra link with probability p, deterministically from seed.
func Random(n int, p float64, seed int64) (Topology, error) {
	return wrap(graph.RandomConnected(n, p, rand.New(rand.NewSource(seed))))
}

// Custom builds a topology from an explicit edge list; it must be
// connected, simple, and self-loop free.
func Custom(name string, n int, edges [][2]int) (Topology, error) {
	return wrap(graph.New(name, n, edges))
}
