package snappif

import (
	"math/rand"

	"snappif/internal/transform"
	"snappif/internal/wave"
)

// newSeededRand builds a deterministic RNG for corruption injection.
func newSeededRand(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 1
	}
	return rand.New(rand.NewSource(seed))
}

// QueryFunc computes a global query result from the consistent vector of
// per-processor inputs (index = processor ID).
type QueryFunc = transform.QueryFunc

// QueryService evaluates arbitrary global queries with snap semantics (the
// paper's concluding "universal transformer" idea): each Evaluate runs one
// PIF wave that gathers a consistent input vector at the root and applies
// the query function. The first evaluation after an arbitrary transient
// fault is already exact.
type QueryService struct {
	svc *transform.Service
}

// NewQueryService builds a query service on topo with initiator root.
func NewQueryService(topo Topology, root int, opts ...NetworkOption) (*QueryService, error) {
	o := collectOptions(opts)
	svc, err := transform.NewService(topo.g, root, wave.WithSeed(o.seed))
	if err != nil {
		return nil, err
	}
	return &QueryService{svc: svc}, nil
}

// SetInput sets processor p's query input.
func (qs *QueryService) SetInput(p int, v int64) { qs.svc.SetInput(p, v) }

// Evaluate runs one wave and applies f to the gathered input vector.
func (qs *QueryService) Evaluate(f QueryFunc) (int64, error) { return qs.svc.Evaluate(f) }

// Corrupt injects a corruption pattern into the service's protocol state.
func (qs *QueryService) Corrupt(kind Corruption, seed int64) error {
	return corruptWaveSystem(qs.svc.System(), kind, seed)
}

// Election is snap-stabilizing leader election built on the query service:
// the processor with the highest priority wins (ties toward the higher ID),
// and every Elect call — including the first after a fault — is exact.
type Election struct {
	el *transform.Election
}

// NewElection builds an election on topo; the wave initiator is root and
// default priorities are the processor IDs.
func NewElection(topo Topology, root int, opts ...NetworkOption) (*Election, error) {
	o := collectOptions(opts)
	el, err := transform.NewElection(topo.g, root, wave.WithSeed(o.seed))
	if err != nil {
		return nil, err
	}
	return &Election{el: el}, nil
}

// SetPriority overrides processor p's election priority.
func (e *Election) SetPriority(p int, priority int64) { e.el.SetPriority(p, priority) }

// Elect runs one wave and returns the elected leader.
func (e *Election) Elect() (int, error) { return e.el.Elect() }

// Corrupt injects a corruption pattern into the election's protocol state.
func (e *Election) Corrupt(kind Corruption, seed int64) error {
	return corruptWaveSystem(e.el.System(), kind, seed)
}

// collectOptions extracts the network options relevant to wave-based
// services (currently the seed).
func collectOptions(opts []NetworkOption) networkOptions {
	o := networkOptions{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// corruptWaveSystem applies a public corruption kind to a wave system.
func corruptWaveSystem(sys *wave.System, kind Corruption, seed int64) error {
	inj, err := injectorFor(kind)
	if err != nil {
		return err
	}
	inj.Apply(sys.Cfg, sys.Proto, newSeededRand(seed))
	return nil
}
