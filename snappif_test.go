package snappif_test

import (
	"errors"
	"testing"

	"snappif"
)

func TestQuickstartFlow(t *testing.T) {
	topo, err := snappif.Ring(12)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snappif.NewNetwork(topo, 0, snappif.WithSeed(7), snappif.WithInvariantChecking())
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Broadcast()
	if err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	if !res.OK() {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Delivered != topo.N()-1 || res.Acknowledged != topo.N()-1 {
		t.Fatalf("delivered=%d acked=%d, want %d", res.Delivered, res.Acknowledged, topo.N()-1)
	}
	if res.Rounds <= 0 || res.Height <= 0 {
		t.Fatalf("rounds=%d height=%d, want positive", res.Rounds, res.Height)
	}
	if bound := 5*res.Height + 5; res.Rounds > bound {
		t.Fatalf("rounds=%d exceeds 5h+5=%d", res.Rounds, bound)
	}
}

func TestBroadcastAfterEveryCorruption(t *testing.T) {
	kinds := []snappif.Corruption{
		snappif.CorruptUniform, snappif.CorruptPartial, snappif.CorruptPhantomTree,
		snappif.CorruptPrematureFok, snappif.CorruptInflatedCounts,
		snappif.CorruptStaleFeedback, snappif.CorruptMaxLevels, snappif.CorruptStaleRegion,
	}
	topo, err := snappif.Random(14, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range kinds {
		net, err := snappif.NewNetwork(topo, 0, snappif.WithSeed(int64(kind)))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Corrupt(kind); err != nil {
			t.Fatalf("corrupt %d: %v", kind, err)
		}
		res, err := net.Broadcast()
		if err != nil {
			t.Fatalf("broadcast after corruption %d: %v", kind, err)
		}
		if !res.OK() || res.Delivered != topo.N()-1 {
			t.Fatalf("corruption %d: delivered %d/%d, violations %v",
				kind, res.Delivered, topo.N()-1, res.Violations)
		}
	}
	if err := (&snappif.Network{}).Corrupt(snappif.Corruption(99)); err == nil {
		t.Fatal("unknown corruption accepted")
	}
}

func TestAggregationViaFacade(t *testing.T) {
	topo, err := snappif.Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snappif.NewNetwork(topo, 0, snappif.WithCombine(snappif.MinCombine))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, topo.N())
	for p := range vals {
		vals[p] = int64(50 - 3*p)
	}
	if err := net.SetValues(vals); err != nil {
		t.Fatal(err)
	}
	res, err := net.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	want := vals[len(vals)-1] // smallest value
	if res.Aggregate != want {
		t.Fatalf("aggregate = %d, want %d", res.Aggregate, want)
	}
}

func TestStabilize(t *testing.T) {
	topo, err := snappif.Line(10)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snappif.NewNetwork(topo, 0, snappif.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	// Already clean: zero rounds.
	rounds, err := net.Stabilize()
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 0 {
		t.Fatalf("clean system stabilized in %d rounds, want 0", rounds)
	}
	if err := net.Corrupt(snappif.CorruptUniform); err != nil {
		t.Fatal(err)
	}
	rounds, err = net.Stabilize()
	if err != nil {
		t.Fatal(err)
	}
	lmax := topo.N() - 1
	if bound := 8*lmax + 7; rounds > bound {
		t.Fatalf("stabilized in %d rounds, exceeds 8·Lmax+7 = %d", rounds, bound)
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := snappif.NewNetwork(snappif.Topology{}, 0); err == nil {
		t.Fatal("zero topology accepted")
	}
	topo, err := snappif.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snappif.NewNetwork(topo, 9); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	if _, err := snappif.NewNetwork(topo, 0, snappif.WithLmax(1)); err == nil {
		t.Fatal("Lmax < N-1 accepted")
	}
	net, err := snappif.NewNetwork(topo, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetValue(-1, 3); err == nil {
		t.Fatal("negative processor accepted")
	}
	if err := net.SetValues([]int64{1, 2}); err == nil {
		t.Fatal("short value vector accepted")
	}
	if _, err := snappif.Ring(2); err == nil {
		t.Fatal("ring-2 accepted")
	}
	if _, err := snappif.Custom("disc", 4, [][2]int{{0, 1}}); err == nil {
		t.Fatal("disconnected custom topology accepted")
	}
}

func TestEveryTopologyFamilyDelivers(t *testing.T) {
	builders := []func() (snappif.Topology, error){
		func() (snappif.Topology, error) { return snappif.Line(9) },
		func() (snappif.Topology, error) { return snappif.Ring(9) },
		func() (snappif.Topology, error) { return snappif.Star(9) },
		func() (snappif.Topology, error) { return snappif.Complete(7) },
		func() (snappif.Topology, error) { return snappif.Grid(3, 3) },
		func() (snappif.Topology, error) { return snappif.Torus(3, 3) },
		func() (snappif.Topology, error) { return snappif.Hypercube(3) },
		func() (snappif.Topology, error) { return snappif.BinaryTree(9) },
		func() (snappif.Topology, error) { return snappif.Caterpillar(3, 2) },
		func() (snappif.Topology, error) { return snappif.Lollipop(4, 3) },
		func() (snappif.Topology, error) { return snappif.Wheel(9) },
		func() (snappif.Topology, error) { return snappif.Circulant(9, []int{1, 3}) },
		func() (snappif.Topology, error) { return snappif.Barbell(3, 2) },
		func() (snappif.Topology, error) { return snappif.CompleteBipartite(4, 5) },
		func() (snappif.Topology, error) { return snappif.KaryTree(3, 10) },
		func() (snappif.Topology, error) { return snappif.Random(9, 0.3, 5) },
	}
	for _, build := range builders {
		topo, err := build()
		if err != nil {
			t.Fatal(err)
		}
		t.Run(topo.Name(), func(t *testing.T) {
			net, err := snappif.NewNetwork(topo, 0,
				snappif.WithSeed(3),
				snappif.WithDaemon(snappif.RoundRobinDaemon()),
			)
			if err != nil {
				t.Fatal(err)
			}
			if err := net.Corrupt(snappif.CorruptUniform); err != nil {
				t.Fatal(err)
			}
			res, err := net.Broadcast()
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() || res.Delivered != topo.N()-1 {
				t.Fatalf("delivered %d/%d, violations %v", res.Delivered, topo.N()-1, res.Violations)
			}
		})
	}
}

func TestRunWavesSequence(t *testing.T) {
	topo, err := snappif.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snappif.NewNetwork(topo, 0, snappif.WithDaemon(snappif.SynchronousDaemon()))
	if err != nil {
		t.Fatal(err)
	}
	waves, err := net.RunWaves(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) != 4 {
		t.Fatalf("got %d waves, want 4", len(waves))
	}
	for i := 1; i < len(waves); i++ {
		if waves[i].Message <= waves[i-1].Message {
			t.Fatalf("messages must increase: %d then %d", waves[i-1].Message, waves[i].Message)
		}
	}
}

func TestWaveIncompleteError(t *testing.T) {
	topo, err := snappif.Line(30)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snappif.NewNetwork(topo, 0, snappif.WithMaxSteps(5))
	if err != nil {
		t.Fatal(err)
	}
	_, err = net.Broadcast()
	if err == nil {
		t.Fatal("expected step-budget error")
	}
	// The sim layer's step-limit error surfaces; callers only need to know
	// it failed, but the sentinel is part of the contract when the cycle
	// merely didn't finish counting.
	if !errors.Is(err, snappif.ErrWaveIncomplete) {
		t.Logf("got non-sentinel error (acceptable): %v", err)
	}
}
