package snappif_test

import (
	"fmt"
	"testing"

	"snappif"
	"snappif/internal/graph"
	"snappif/internal/service"
)

// corruptions is the facade corruption list in a fixed order, so a fuzz
// corpus byte names one stably.
var corruptions = []snappif.Corruption{
	snappif.CorruptUniform,
	snappif.CorruptPartial,
	snappif.CorruptPhantomTree,
	snappif.CorruptPrematureFok,
	snappif.CorruptInflatedCounts,
	snappif.CorruptStaleFeedback,
	snappif.CorruptMaxLevels,
	snappif.CorruptStaleRegion,
}

// TestMultiNetworkCorruptMidWave corrupts an instance between serving bursts
// — when the composed system is mid-flight, not at a clean start — and
// checks every subsequent wave still satisfies [PIF1]/[PIF2]. RunWavesEach
// stops the moment the slowest initiator finishes its k-th wave, so the
// other instances are generally mid-wave at that point; corrupting there is
// the snap-stabilization claim under live load.
func TestMultiNetworkCorruptMidWave(t *testing.T) {
	topo, err := snappif.Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snappif.NewMultiNetwork(topo, []int{0, 11}, snappif.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.RunWavesEach(1); err != nil {
		t.Fatal(err)
	}
	for _, kind := range corruptions {
		if err := net.CorruptInstance(0, kind); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		waves, err := net.RunWavesEach(1)
		if err != nil {
			t.Fatalf("after mid-wave %v: %v", kind, err)
		}
		for _, w := range waves {
			if !w.OK(topo.N()) {
				t.Fatalf("after mid-wave %v: violated wave %+v", kind, w)
			}
		}
	}
}

// lanePayloads serves a saturated burst of k snapshot requests per lane and
// returns the per-lane (kind, msg, resp) sequences.
func lanePayloads(t *testing.T, g *graph.Graph, engine string, initiators []int, faults []string, seed int64, k int) []string {
	t.Helper()
	srv, err := service.New(service.Options{
		Graph: g, Engine: engine, Initiators: initiators, Faults: faults, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []service.Arrival
	kinds := service.Kinds()
	for j := 0; j < k; j++ {
		for l := range initiators {
			arrivals = append(arrivals, service.Arrival{
				T: int64(1 + j), Lane: l, Kind: kinds[(j+l)%len(kinds)],
			})
		}
	}
	service.SortArrivals(arrivals)
	rep, err := srv.Run(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Waves) != len(arrivals) {
		t.Fatalf("%s delivered %d/%d waves", engine, len(rep.Waves), len(arrivals))
	}
	out := make([]string, len(initiators))
	for l := range initiators {
		for _, w := range rep.PerLane(l) {
			out[l] += fmt.Sprintf("%s/%d/%d;", w.Kind, w.Msg, w.Resp)
		}
	}
	return out
}

// TestMultiInitiatorCrossEngine is the sim/flat differential over
// multi-initiator concurrent waves: the same initiator set serving the same
// burst must deliver identical per-initiator payload sequences on the
// generic and flat engines (and event, which rides along), from clean and
// corrupted starts. The MultiNetwork facade leg checks the composed product
// delivers [PIF1]/[PIF2]-correct waves for the same initiator sets.
func TestMultiInitiatorCrossEngine(t *testing.T) {
	cases := []struct {
		spec       string
		initiators []int
		faults     []string
	}{
		{"ring:10", []int{0, 5}, nil},
		{"grid:3x4", []int{0, 11}, nil},
		{"line:9", []int{0, 4, 8}, nil},
		{"grid:3x4", []int{0, 11}, []string{"uniform-random", "stale-feedback"}},
		{"ring:10", []int{0, 5}, []string{"phantom-tree", "stale-region"}},
	}
	for _, tc := range cases {
		name := tc.spec
		if tc.faults != nil {
			name += "/faulted"
		}
		t.Run(name, func(t *testing.T) {
			g, err := graph.Parse(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			sim := lanePayloads(t, g, "sim", tc.initiators, tc.faults, 13, 3)
			flat := lanePayloads(t, g, "flat", tc.initiators, tc.faults, 13, 3)
			evt := lanePayloads(t, g, "event", tc.initiators, tc.faults, 13, 3)
			for l := range tc.initiators {
				if sim[l] != flat[l] {
					t.Errorf("lane %d sim vs flat diverge:\nsim  %s\nflat %s", l, sim[l], flat[l])
				}
				if sim[l] != evt[l] {
					t.Errorf("lane %d sim vs event diverge:\nsim   %s\nevent %s", l, sim[l], evt[l])
				}
			}
		})
	}
}

// FuzzMultiNetworkWaves is the multi-initiator fuzz oracle, the concurrent
// analog of FuzzThreeEngines: for any (topology, two corrupted instances,
// seed) the fuzzer invents, (a) the composed MultiNetwork must complete
// [PIF1]/[PIF2]-correct waves for every initiator, and (b) the sim and flat
// engines must agree on the per-initiator payload sequences when serving the
// same multi-initiator start.
func FuzzMultiNetworkWaves(f *testing.F) {
	for i := range corruptions {
		f.Add(byte(i%4), byte(i), byte(i), byte((i+3)%len(corruptions)), int64(100+i))
	}
	f.Add(byte(1), byte(9), byte(0), byte(5), int64(7))
	f.Add(byte(2), byte(5), byte(2), byte(2), int64(-3))

	f.Fuzz(func(t *testing.T, topoPick, nRaw, c1, c2 byte, seed int64) {
		n := 4 + int(nRaw)%8
		if seed == 0 {
			seed = 1
		}
		var (
			topo snappif.Topology
			spec string
			err  error
		)
		switch topoPick % 4 {
		case 0:
			topo, err = snappif.Line(n)
			spec = fmt.Sprintf("line:%d", n)
		case 1:
			topo, err = snappif.Ring(n)
			spec = fmt.Sprintf("ring:%d", n)
		case 2:
			topo, err = snappif.Star(n)
			spec = fmt.Sprintf("star:%d", n)
		default:
			topo, err = snappif.Grid(2, (n+1)/2)
			spec = fmt.Sprintf("grid:2x%d", (n+1)/2)
			n = 2 * ((n + 1) / 2)
		}
		if err != nil {
			t.Fatal(err)
		}
		initiators := []int{0, n - 1}

		net, err := snappif.NewMultiNetwork(topo, initiators, snappif.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.CorruptInstance(0, corruptions[int(c1)%len(corruptions)]); err != nil {
			t.Fatal(err)
		}
		if err := net.CorruptInstance(1, corruptions[int(c2)%len(corruptions)]); err != nil {
			t.Fatal(err)
		}
		waves, err := net.RunWavesEach(2)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range waves {
			if !w.OK(topo.N()) {
				t.Fatalf("violated wave %+v", w)
			}
		}

		g, err := graph.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		faultName := []string{"uniform-random", "partial-random", "phantom-tree", "premature-fok",
			"inflated-counts", "stale-feedback", "max-levels", "stale-region"}
		faults := []string{faultName[int(c1)%len(faultName)], faultName[int(c2)%len(faultName)]}
		sim := lanePayloads(t, g, "sim", initiators, faults, seed, 2)
		flat := lanePayloads(t, g, "flat", initiators, faults, seed, 2)
		for l := range initiators {
			if sim[l] != flat[l] {
				t.Errorf("lane %d sim vs flat diverge:\nsim  %s\nflat %s", l, sim[l], flat[l])
			}
		}
	})
}
