package snappif_test

import (
	"testing"

	"snappif"
)

func TestMultiNetworkFacade(t *testing.T) {
	topo, err := snappif.Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snappif.NewMultiNetwork(topo, []int{0, 11}, snappif.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Initiators(); len(got) != 2 || got[0] != 0 || got[1] != 11 {
		t.Fatalf("initiators = %v", got)
	}
	if err := net.CorruptInstance(0, snappif.CorruptUniform); err != nil {
		t.Fatal(err)
	}
	if err := net.CorruptInstance(1, snappif.CorruptStaleFeedback); err != nil {
		t.Fatal(err)
	}
	waves, err := net.RunWavesEach(2)
	if err != nil {
		t.Fatal(err)
	}
	perInit := make(map[int]int)
	for _, w := range waves {
		if !w.OK(topo.N()) {
			t.Fatalf("wave violated: %+v", w)
		}
		perInit[w.Initiator]++
	}
	if perInit[0] < 2 || perInit[11] < 2 {
		t.Fatalf("per-initiator waves: %v", perInit)
	}
}

func TestMultiNetworkValidation(t *testing.T) {
	topo, err := snappif.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snappif.NewMultiNetwork(snappif.Topology{}, []int{0}); err == nil {
		t.Fatal("zero topology accepted")
	}
	if _, err := snappif.NewMultiNetwork(topo, nil); err == nil {
		t.Fatal("empty initiators accepted")
	}
	net, err := snappif.NewMultiNetwork(topo, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.CorruptInstance(5, snappif.CorruptUniform); err == nil {
		t.Fatal("out-of-range instance accepted")
	}
	if err := net.CorruptInstance(0, snappif.Corruption(77)); err == nil {
		t.Fatal("unknown corruption accepted")
	}
}
